package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"grove/internal/agg"
	"grove/internal/bitmap"
	"grove/internal/obs"
	"grove/internal/query"
)

// scatter fans fn across every shard concurrently and gathers the per-shard
// results in shard order. The first shard failure cancels the siblings'
// sub-context, so a cancelled or failed query promptly abandons all shard
// sub-queries instead of letting the stragglers run to completion. A panic
// in a shard goroutine is recovered into an error (on the single-relation
// path a query panic unwinds the caller's goroutine; here it would kill the
// process otherwise).
//
// With one shard, fn runs inline on the caller's goroutine — no goroutine,
// channel, or context allocation — so the n=1 store keeps the exact
// single-relation execution profile.
func scatter[T any](ctx context.Context, c *Coordinator, fn func(ctx context.Context, s int, u *Unit) (T, error)) ([]T, error) {
	n := len(c.units)
	if n == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		v, err := fn(ctx, 0, u)
		if err != nil {
			return nil, err
		}
		return []T{v}, nil
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s, u := range c.units {
		wg.Add(1)
		u.pending.Add(1)
		go func(s int, u *Unit) {
			defer wg.Done()
			defer u.pending.Add(-1)
			defer func() {
				if p := recover(); p != nil {
					errs[s] = fmt.Errorf("shard %d: query panicked: %v", s, p)
					cancel()
				}
			}()
			v, err := fn(sctx, s, u)
			if err != nil {
				errs[s] = err
				cancel() // abandon the sibling sub-queries promptly
				return
			}
			results[s] = v
		}(s, u)
	}
	wg.Wait()
	if err := scatterError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// scatterError picks the error to surface from a scatter round. When one
// shard fails for a real reason, its siblings abort with context.Canceled
// from the induced cancellation — surfacing one of those would mask the
// cause — so cancellation errors are only returned when no shard reports
// anything else (i.e. the caller's own context was cancelled).
func scatterError(errs []error) error {
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return err
	}
	return cancelled
}

// preferErr merges two per-query error slots, preferring a real error over a
// cancellation one (same masking concern as scatterError).
func preferErr(cur, next error) error {
	if next == nil {
		return cur
	}
	if cur == nil {
		return next
	}
	if errors.Is(cur, context.Canceled) || errors.Is(cur, context.DeadlineExceeded) {
		if !errors.Is(next, context.Canceled) && !errors.Is(next, context.DeadlineExceeded) {
			return next
		}
	}
	return cur
}

// --- observed scatter --------------------------------------------------------

// subOut carries one shard's sub-query value plus the observability
// byproducts runScattered collects: the captured engine trace and the
// queue-wait/execution timings.
type subOut[T any] struct {
	v      T
	child  obs.Trace
	traced bool
	wait   time.Duration
	dur    time.Duration
}

// runScattered executes one logical query across every shard of a multi-shard
// coordinator and merges the partials. kind and qstr name the query for the
// root trace and the slow log (qstr may be empty when neither is attached —
// callers skip rendering it to keep the disabled path allocation-free).
//
// With no observability hooks attached this is exactly scatter + merge. With
// tracing on, each shard sub-query runs on an engine clone holding a private
// one-slot capture ring, and the coordinator records one hierarchical root
// trace: a fan-out span covering the scatter, one queue-wait span per shard
// (dispatch → sub-query start), the per-shard engine traces as children, and
// a merge span. With the slow log on, the clone detaches the engine-level
// log — the coordinator records one merged entry per logical query with
// per-shard timings instead of N fragments. Queue-wait and merge histograms
// are observed when attached.
func runScattered[T, R any](ctx context.Context, c *Coordinator, kind, qstr string,
	run func(ctx context.Context, eng *query.Engine, u *Unit) (T, error),
	merge func(subs []T) R) (R, error) {

	var zero R
	ring, slow := c.traces, c.slow
	var start time.Time
	var startIO obs.IODelta
	if slow != nil {
		start = time.Now()
		startIO = c.ioNow()
	}
	var root *obs.ActiveTrace
	if ring != nil {
		root = obs.StartTrace(kind, qstr, c.ioNow())
		root.SetShard(obs.ShardCoordinator)
		root.Begin(obs.PhaseFanOut, c.ioNow())
	}
	capture := root != nil
	clone := capture || slow != nil
	timed := clone || c.queueWait != nil
	var dispatch time.Time
	if timed {
		dispatch = time.Now()
	}
	subs, err := scatter(ctx, c, func(ctx context.Context, s int, u *Unit) (subOut[T], error) {
		var out subOut[T]
		var begun time.Time
		if timed {
			begun = time.Now()
			out.wait = begun.Sub(dispatch)
			if c.queueWait != nil {
				c.queueWait[s].Observe(out.wait.Seconds())
			}
		}
		eng := u.Eng
		var cring *obs.TraceRing
		if clone {
			eng = eng.Clone()
			eng.SetSlowLog(nil)
			if capture {
				cring = obs.NewTraceRing(1)
				eng.SetTraces(cring)
			} else {
				eng.SetTraces(nil)
			}
		}
		v, err := run(ctx, eng, u)
		if timed {
			out.dur = time.Since(begun)
		}
		if cring != nil {
			if rec := cring.Recent(); len(rec) > 0 {
				out.child = rec[0]
				out.traced = true
			}
		}
		if err != nil {
			return out, err
		}
		out.v = v
		return out, nil
	})
	if err != nil {
		// The per-shard results (and their captured traces) are discarded by
		// scatter on error; the root still records the failed fan-out.
		if root != nil {
			ring.Add(root.Finish(c.ioNow()))
		}
		if slow != nil {
			c.slowObserve(kind, qstr, start, startIO, nil, err)
		}
		return zero, err
	}
	if root != nil {
		root.Begin(obs.PhaseMerge, c.ioNow()) // closes the fan-out span
		for s, sb := range subs {
			root.AddSpan(obs.Span{Phase: obs.PhaseQueueWait, Shard: s,
				DurationNanos: sb.wait.Nanoseconds()})
		}
		for _, sb := range subs {
			if sb.traced {
				root.AddChild(sb.child)
			}
		}
	}
	vals := make([]T, len(subs))
	for i, sb := range subs {
		vals[i] = sb.v
	}
	var mstart time.Time
	if c.mergeDur != nil {
		mstart = time.Now()
	}
	out := merge(vals)
	if c.mergeDur != nil {
		c.mergeDur.Observe(time.Since(mstart).Seconds())
	}
	if root != nil {
		ring.Add(root.Finish(c.ioNow()))
	}
	if slow != nil {
		timings := make([]obs.ShardTiming, len(subs))
		for s, sb := range subs {
			timings[s] = obs.ShardTiming{Shard: s,
				QueueNanos: sb.wait.Nanoseconds(), DurationNanos: sb.dur.Nanoseconds()}
		}
		c.slowObserve(kind, qstr, start, startIO, timings, nil)
	}
	return out, nil
}

// slowObserve appends a coordinator-level slow-log entry when the finished
// scatter-gather crossed the log's latency threshold.
func (c *Coordinator) slowObserve(kind, qstr string, start time.Time, startIO obs.IODelta, shards []obs.ShardTiming, err error) {
	d := time.Since(start)
	if d < c.slow.Threshold() {
		return
	}
	sq := obs.SlowQuery{
		Kind:           kind,
		Query:          qstr,
		Shard:          obs.ShardCoordinator,
		StartUnixNanos: start.UnixNano(),
		DurationNanos:  d.Nanoseconds(),
		IO:             c.ioNow().Sub(startIO),
		Shards:         shards,
	}
	if err != nil {
		sq.Error = err.Error()
		sq.Cancelled = errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	}
	c.slow.Add(sq)
}

// queryName renders a query's display string only when an observability hook
// needs it, so the disabled scatter path never pays the rendering.
//
//grove:hotpath
func (c *Coordinator) queryName(s fmt.Stringer) string {
	if c.traces == nil && c.slow == nil {
		return ""
	}
	return s.String()
}

// --- graph queries -----------------------------------------------------------

// mergeResults combines per-shard graph-query results: the global answer is
// the offset-translated union of the (disjoint) per-shard answers. Plan is
// shard 0's, as the representative — shards share the schema and views, so
// the plans agree.
func (c *Coordinator) mergeResults(q *query.GraphQuery, subs []*query.Result) *query.Result {
	answers := make([]*bitmap.Bitmap, len(subs))
	for i, r := range subs {
		answers[i] = r.Answer
	}
	return &query.Result{
		Query:  q,
		Plan:   subs[0].Plan,
		Answer: c.mergeBitmaps(answers),
		Subs:   subs,
	}
}

// MatchContext executes a structural graph query across all shards.
func (c *Coordinator) MatchContext(ctx context.Context, q *query.GraphQuery) (*query.Result, error) {
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return u.Eng.ExecuteGraphQueryContext(ctx, q)
	}
	return runScattered(ctx, c, obs.KindGraph, c.queryName(q),
		func(ctx context.Context, eng *query.Engine, u *Unit) (*query.Result, error) {
			return eng.ExecuteGraphQueryContext(ctx, q)
		},
		func(subs []*query.Result) *query.Result { return c.mergeResults(q, subs) })
}

// EvalExprContext evaluates a boolean expression over graph queries across
// all shards. AND/OR/ANDNOT distribute over a disjoint record partition, so
// each shard evaluates the whole expression locally and the global answer is
// the translated union.
func (c *Coordinator) EvalExprContext(ctx context.Context, expr query.Expr) (*bitmap.Bitmap, error) {
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return u.Eng.EvalExprContext(ctx, expr)
	}
	return c.evalScattered(ctx, obs.KindExpr, c.queryName(expr), expr)
}

// evalScattered is the multi-shard expression evaluation body, parameterized
// on the trace/slow-log labels so sharded statements can reuse it under the
// "statement" kind with the statement's text.
func (c *Coordinator) evalScattered(ctx context.Context, kind, qstr string, expr query.Expr) (*bitmap.Bitmap, error) {
	return runScattered(ctx, c, kind, qstr,
		func(ctx context.Context, eng *query.Engine, u *Unit) (*bitmap.Bitmap, error) {
			return eng.EvalExprContext(ctx, expr)
		},
		func(subs []*bitmap.Bitmap) *bitmap.Bitmap { return c.mergeBitmaps(subs) })
}

// --- path aggregation --------------------------------------------------------

// mergeAgg combines per-shard path-aggregation results. Each record's
// per-path folds were computed entirely inside its shard — merging is pure
// reordering by ascending global id, never re-association of float folds —
// so an n-shard aggregate is bit-identical to the single-shard one,
// including NaN and signed-zero values.
func (c *Coordinator) mergeAgg(q *query.PathAggQuery, subs []*query.AggResult) *query.AggResult {
	n := uint32(len(c.units))
	type ref struct {
		g uint32 // global record id
		s int    // shard
		i int    // index within subs[s].RecordIDs
	}
	total := 0
	for _, r := range subs {
		total += len(r.RecordIDs)
	}
	refs := make([]ref, 0, total)
	for s, r := range subs {
		for i, local := range r.RecordIDs {
			refs = append(refs, ref{g: local*n + uint32(s), s: s, i: i})
		}
	}
	sort.Slice(refs, func(a, b int) bool { return refs[a].g < refs[b].g })

	out := &query.AggResult{
		Query:           q,
		Answer:          bitmap.New(),
		RecordIDs:       make([]uint32, len(refs)),
		Paths:           subs[0].Paths,
		SegmentsPerPath: subs[0].SegmentsPerPath,
		Values:          make([][]float64, len(subs[0].Values)),
	}
	for p := range out.Values {
		out.Values[p] = make([]float64, len(refs))
	}
	for j, r := range refs {
		out.RecordIDs[j] = r.g
		out.Answer.Add(r.g)
		for p := range out.Values {
			out.Values[p][j] = subs[r.s].Values[p][r.i]
		}
	}
	return out
}

// AggregateContext executes a path-aggregation query across all shards.
func (c *Coordinator) AggregateContext(ctx context.Context, q *query.PathAggQuery) (*query.AggResult, error) {
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return u.Eng.ExecutePathAggQueryContext(ctx, q)
	}
	return c.aggregateScattered(ctx, obs.KindPathAgg, c.queryName(q), q)
}

// aggregateScattered is the multi-shard path-aggregation body, parameterized
// on the trace/slow-log labels (see evalScattered).
func (c *Coordinator) aggregateScattered(ctx context.Context, kind, qstr string, q *query.PathAggQuery) (*query.AggResult, error) {
	return runScattered(ctx, c, kind, qstr,
		func(ctx context.Context, eng *query.Engine, u *Unit) (*query.AggResult, error) {
			return eng.ExecutePathAggQueryContext(ctx, q)
		},
		func(subs []*query.AggResult) *query.AggResult { return c.mergeAgg(q, subs) })
}

// AggregateScalarContext executes a path aggregation folded all the way down
// to one scalar across all shards. MIN/MAX queries scatter the scalar plan —
// each shard runs its (possibly zone-skipping) scan and the shard scalars
// merge with the query's own Fold, which is bit-identical to the global
// record-order fold because MIN/MAX are order-independent under the kernel
// total order. Any other function routes through the row-merging
// AggregateContext and folds the merged rows in ascending global record
// order, because float addition does not reassociate.
func (c *Coordinator) AggregateScalarContext(ctx context.Context, q *query.PathAggQuery) (*query.ScalarAggResult, error) {
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return u.Eng.ExecutePathAggScalarContext(ctx, q)
	}
	if q != nil && (q.Agg.Name == agg.Min.Name || q.Agg.Name == agg.Max.Name) {
		return runScattered(ctx, c, obs.KindPathAgg, c.queryName(q),
			func(ctx context.Context, eng *query.Engine, u *Unit) (*query.ScalarAggResult, error) {
				return eng.ExecutePathAggScalarContext(ctx, q)
			},
			func(subs []*query.ScalarAggResult) *query.ScalarAggResult { return mergeScalar(q, subs) })
	}
	res, err := c.AggregateContext(ctx, q)
	if err != nil {
		return nil, err
	}
	out := &query.ScalarAggResult{Query: q, Records: len(res.RecordIDs)}
	acc := q.Agg.Identity
	folded := 0
	for _, v := range res.FoldAcrossPaths() {
		if !math.IsNaN(v) {
			acc = q.Agg.Fold(acc, v)
			folded++
		}
	}
	if folded == 0 {
		acc = math.NaN()
	}
	out.Value = acc
	out.Folded = folded
	return out, nil
}

// mergeScalar combines per-shard scalar aggregates of a MIN/MAX query in
// shard order. Each shard's Value is the total-order extremum of its local
// contributions, so folding the shard values yields the extremum of the whole
// multiset — independent of shard count and order, bit for bit (including
// signed zero). Shards with nothing to contribute report NaN and are skipped,
// exactly like NULL records in the single-shard fold.
func mergeScalar(q *query.PathAggQuery, subs []*query.ScalarAggResult) *query.ScalarAggResult {
	out := &query.ScalarAggResult{Query: q, ZoneSkipped: true}
	acc := q.Agg.Identity
	any := false
	for _, s := range subs {
		out.Records += s.Records
		out.Folded += s.Folded
		out.BlocksScanned += s.BlocksScanned
		out.BlocksSkipped += s.BlocksSkipped
		out.ZoneSkipped = out.ZoneSkipped && s.ZoneSkipped
		if !math.IsNaN(s.Value) {
			acc = q.Agg.Fold(acc, s.Value)
			any = true
		}
	}
	if !any {
		acc = math.NaN()
	}
	out.Value = acc
	return out
}

// --- statements --------------------------------------------------------------

// ExecuteStatementContext parses and executes one text-language statement
// across all shards.
func (c *Coordinator) ExecuteStatementContext(ctx context.Context, text string) (*query.StatementResult, error) {
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return u.Eng.ExecuteStatementContext(ctx, text)
	}
	stmt, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	// The coordinator parses once and scatters the parsed form, so — unlike
	// the single-shard path — the root trace carries no parse span; it is
	// labelled with the statement kind and text, and the per-shard children
	// trace under their own execution kind.
	if stmt.Agg != nil {
		res, err := c.aggregateScattered(ctx, obs.KindStatement, text, stmt.Agg)
		if err != nil {
			return nil, err
		}
		return &query.StatementResult{Agg: res}, nil
	}
	ids, err := c.evalScattered(ctx, obs.KindStatement, text, stmt.Expr)
	if err != nil {
		return nil, err
	}
	return &query.StatementResult{IDs: ids}, nil
}

// --- batches -----------------------------------------------------------------

// batchWorkers splits a worker budget across shards: each shard's batch
// executor gets workers/n (at least 1), so total concurrency stays near the
// requested budget instead of multiplying by the shard count.
func (c *Coordinator) batchWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if n := len(c.units); n > 1 {
		workers /= n
		if workers < 1 {
			workers = 1
		}
	}
	return workers
}

// ExecuteGraphBatchContext runs a batch of structural queries across all
// shards: every shard executes the whole batch through its own worker pool,
// and the per-query partials merge by query index. Error slots follow batch
// semantics — one query's failure does not abort the rest — and a merged
// query errors if it failed on any shard.
func (c *Coordinator) ExecuteGraphBatchContext(ctx context.Context, queries []*query.GraphQuery, workers int) ([]*query.Result, []error) {
	per := c.batchWorkers(workers)
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return query.NewBatchExecutor(u.Eng, per).ExecuteGraphQueriesContext(ctx, queries)
	}
	type shardOut struct {
		res  []*query.Result
		errs []error
	}
	var dispatch time.Time
	if c.queueWait != nil {
		dispatch = time.Now()
	}
	subs, err := scatter(ctx, c, func(ctx context.Context, s int, u *Unit) (shardOut, error) {
		if c.queueWait != nil {
			c.queueWait[s].Observe(time.Since(dispatch).Seconds())
		}
		res, errs := query.NewBatchExecutor(u.Eng, per).ExecuteGraphQueriesContext(ctx, queries)
		return shardOut{res: res, errs: errs}, nil
	})
	out := make([]*query.Result, len(queries))
	outErrs := make([]error, len(queries))
	if err != nil { // only a recovered panic can surface here
		for i := range outErrs {
			outErrs[i] = err
		}
		return out, outErrs
	}
	subsI := make([]*query.Result, len(subs))
	var mstart time.Time
	if c.mergeDur != nil {
		mstart = time.Now()
	}
	for i, q := range queries {
		var qerr error
		for s := range subs {
			qerr = preferErr(qerr, subs[s].errs[i])
			subsI[s] = subs[s].res[i]
		}
		if qerr != nil {
			outErrs[i] = qerr
			continue
		}
		out[i] = c.mergeResults(q, append([]*query.Result(nil), subsI...))
	}
	if c.mergeDur != nil {
		c.mergeDur.Observe(time.Since(mstart).Seconds())
	}
	return out, outErrs
}

// ExecutePathAggBatchContext is ExecuteGraphBatchContext for
// path-aggregation batches.
func (c *Coordinator) ExecutePathAggBatchContext(ctx context.Context, queries []*query.PathAggQuery, workers int) ([]*query.AggResult, []error) {
	per := c.batchWorkers(workers)
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return query.NewBatchExecutor(u.Eng, per).ExecutePathAggQueriesContext(ctx, queries)
	}
	type shardOut struct {
		res  []*query.AggResult
		errs []error
	}
	var dispatch time.Time
	if c.queueWait != nil {
		dispatch = time.Now()
	}
	subs, err := scatter(ctx, c, func(ctx context.Context, s int, u *Unit) (shardOut, error) {
		if c.queueWait != nil {
			c.queueWait[s].Observe(time.Since(dispatch).Seconds())
		}
		res, errs := query.NewBatchExecutor(u.Eng, per).ExecutePathAggQueriesContext(ctx, queries)
		return shardOut{res: res, errs: errs}, nil
	})
	out := make([]*query.AggResult, len(queries))
	outErrs := make([]error, len(queries))
	if err != nil {
		for i := range outErrs {
			outErrs[i] = err
		}
		return out, outErrs
	}
	subsI := make([]*query.AggResult, len(subs))
	var mstart time.Time
	if c.mergeDur != nil {
		mstart = time.Now()
	}
	for i, q := range queries {
		var qerr error
		for s := range subs {
			qerr = preferErr(qerr, subs[s].errs[i])
			subsI[s] = subs[s].res[i]
		}
		if qerr != nil {
			outErrs[i] = qerr
			continue
		}
		out[i] = c.mergeAgg(q, subsI)
	}
	if c.mergeDur != nil {
		c.mergeDur.Observe(time.Since(mstart).Seconds())
	}
	return out, outErrs
}
