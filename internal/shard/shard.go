// Package shard partitions the record collection horizontally into N
// independent shards, each owning its own colstore.Relation (bitmap columns,
// measure columns, result-cache slice, snapshot generation), and executes
// queries by scatter-gather: fan the query across every shard in parallel,
// then merge the partials.
//
// The merge is exact, not approximate, because everything grove computes is
// distributive over a disjoint record partition (paper §3.4): a graph query
// answer is a record-id set, so the global answer is the union of per-shard
// answers; boolean combinations distribute over disjoint partitions, so each
// shard evaluates the whole expression locally; and a path aggregation folds
// measures per record, so each record's aggregate is computed entirely
// inside its shard and cross-shard merging is pure reordering — bit-exact by
// construction, with no float re-association.
//
// Record placement is round-robin on arrival: record number i lands on shard
// i mod N at local id i div N, and its global id is local*N + shard. The
// mapping is a bijection, so global ids translate to (shard, local) with two
// integer ops, and a store loaded sequentially assigns the same global ids
// regardless of N — which is what lets the differential tests compare a
// 1-shard and an 8-shard store record-id for record-id.
//
// Writes route by the same mapping, so mutators on different shards proceed
// concurrently — each shard has its own RWMutex — eliminating the
// relation-wide write bottleneck of the single-relation store.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"grove/internal/agg"
	"grove/internal/bitmap"
	"grove/internal/colstore"
	"grove/internal/graph"
	"grove/internal/obs"
	"grove/internal/query"
	"grove/internal/view"
	"grove/internal/wal"
)

// Unit is one shard: a relation plus the engine that queries it.
type Unit struct {
	Rel *colstore.Relation
	Eng *query.Engine

	// ingestMu serializes this shard's mutations with respect to the
	// write-ahead log: held across "append frame to log, apply in memory",
	// so the log's frame order always equals the apply order (which is what
	// makes replayed record ids deterministic). A checkpoint holds every
	// shard's ingestMu at once to cut a consistent cross-shard snapshot.
	ingestMu sync.Mutex

	// pending counts the shard sub-queries currently queued or running on
	// this shard — the per-shard queue-depth gauge on /metrics.
	pending atomic.Int64
}

// Pending returns the number of sub-queries currently queued or running.
func (u *Unit) Pending() int64 { return u.pending.Load() }

// Coordinator owns N shards and a shared element registry (the universal
// schema of §3.1 spans all shards — bitmap column ids must agree everywhere
// or per-shard answers would not be mergeable).
type Coordinator struct {
	units []*Unit
	reg   *graph.Registry

	// rr is the round-robin write cursor: Add i goes to shard rr mod N.
	rr atomic.Uint64

	// saveMu serializes coordinated saves (each shard's own saveMu already
	// serializes its generation sequence; this one keeps the cross-shard
	// manifest consistent with one save at a time).
	saveMu sync.Mutex

	// Observability hooks, all nil by default (the disabled scatter path pays
	// only nil checks). traces is the coordinator-owned ring: with N > 1 a
	// scatter-gathered query records one hierarchical root trace (fan-out /
	// queue-wait / merge spans, per-shard engine traces as children); the ring
	// is also attached to every shard engine so batch sub-queries — executed
	// whole-batch per shard — record flat, shard-labelled traces. slow is the
	// shared slow-query log. queueWait (one histogram per shard) and mergeDur
	// observe scatter dispatch latency and merge wall time. Attach all of them
	// before serving queries, like Engine.SetTraces.
	traces    *obs.TraceRing
	slow      *obs.SlowLog
	queueWait []*obs.Histogram
	mergeDur  *obs.Histogram

	// Write-ahead log state (internal/shard/wal.go). wal is nil until
	// AttachWALFS succeeds — the disabled mutator hot path pays one atomic
	// pointer load. walAnchor/walLoadDir describe what a Load left in
	// memory; the replay/skip counters survive for WALStats.
	wal         atomic.Pointer[walState]
	walAnchor   []walAnchor
	walLoadDir  string
	walReplayed atomic.Int64
	walSkipped  atomic.Int64
}

// New creates a coordinator over n empty shards (n < 1 is clamped to 1) with
// the given vertical partition width per shard relation.
func New(n, partitionWidth int) *Coordinator {
	if n < 1 {
		n = 1
	}
	reg := graph.NewRegistry()
	rels := make([]*colstore.Relation, n)
	for i := range rels {
		rels[i] = colstore.NewRelation(partitionWidth)
	}
	return NewFromRelations(rels, reg)
}

// NewFromRelations wraps existing relations (e.g. loaded from disk) and a
// shared registry into a coordinator. The relation order is the shard order.
func NewFromRelations(rels []*colstore.Relation, reg *graph.Registry) *Coordinator {
	c := &Coordinator{reg: reg}
	total := 0
	for i, rel := range rels {
		eng := query.NewEngine(rel, reg)
		eng.SetShard(i) // label every engine-emitted trace span with its shard
		c.units = append(c.units, &Unit{Rel: rel, Eng: eng})
		total += rel.NumRecords()
	}
	// Resume the round-robin cursor past the loaded records so ingest stays
	// balanced after a reload.
	c.rr.Store(uint64(total))
	return c
}

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.units) }

// Unit returns shard i.
func (c *Coordinator) Unit(i int) *Unit { return c.units[i] }

// Registry returns the shared element registry.
func (c *Coordinator) Registry() *graph.Registry { return c.reg }

// --- record-id mapping ------------------------------------------------------

// globalID translates (shard, local) to the global record id.
//
//grove:hotpath
func (c *Coordinator) globalID(s int, local uint32) uint32 {
	return local*uint32(len(c.units)) + uint32(s)
}

// Locate translates a global record id to its shard and local id, reporting
// an error when no such record exists.
func (c *Coordinator) Locate(g uint32) (*Unit, uint32, error) {
	n := uint32(len(c.units))
	u := c.units[g%n]
	local := g / n
	if int64(local) >= int64(u.Rel.NumRecords()) {
		return nil, 0, fmt.Errorf("shard: record %d out of range (have %d)", g, c.NumRecords())
	}
	return u, local, nil
}

// translateInto adds shard s's local record ids into out as global ids.
func (c *Coordinator) translateInto(out, local *bitmap.Bitmap, s int) {
	n := uint32(len(c.units))
	local.Each(func(l uint32) bool {
		out.Add(l*n + uint32(s))
		return true
	})
}

// mergeBitmaps unions per-shard answers into one global-id bitmap. For a
// single shard local ids are global ids and the answer passes through.
func (c *Coordinator) mergeBitmaps(subs []*bitmap.Bitmap) *bitmap.Bitmap {
	if len(c.units) == 1 {
		return subs[0]
	}
	out := bitmap.New()
	for s, b := range subs {
		if b != nil {
			c.translateInto(out, b, s)
		}
	}
	return out
}

// --- mutators ---------------------------------------------------------------

// Add appends a record to the next shard in round-robin order and returns
// its global record id. Concurrent Adds to different shards proceed in
// parallel; Adds landing on the same shard serialize on that shard's lock.
// With a write-ahead log attached, durability failures are latched and
// surfaced via WALError; Append reports them per call.
func (c *Coordinator) Add(rec *graph.Record) uint32 {
	id, _ := c.Append(rec) //grovevet:ignore droppederr Add keeps its historical signature; the WAL latch surfaces the error via WALError
	return id
}

// Delete soft-deletes the record with global id g.
func (c *Coordinator) Delete(g uint32) (bool, error) {
	u, local, err := c.Locate(g)
	if err != nil {
		return false, err
	}
	w := c.wal.Load()
	if w == nil {
		return u.Rel.Delete(local)
	}
	s := int(g % uint32(len(c.units)))
	u.ingestMu.Lock() //grovevet:ignore lockorder the log append must happen under ingestMu so file order equals apply order
	lsn, werr := w.logs[s].Append(wal.Op{Kind: wal.OpDelete, Rec: local})
	was, derr := u.Rel.Delete(local)
	u.ingestMu.Unlock()
	if werr == nil {
		werr = w.logs[s].Commit(lsn)
	}
	if derr != nil {
		return was, derr
	}
	if werr != nil {
		return was, fmt.Errorf("shard %d: %w", s, werr)
	}
	return was, nil
}

// Undelete restores a soft-deleted record.
func (c *Coordinator) Undelete(g uint32) bool {
	u, local, err := c.Locate(g)
	if err != nil {
		return false
	}
	w := c.wal.Load()
	if w == nil {
		return u.Rel.Undelete(local)
	}
	s := int(g % uint32(len(c.units)))
	u.ingestMu.Lock() //grovevet:ignore lockorder the log append must happen under ingestMu so file order equals apply order
	lsn, werr := w.logs[s].Append(wal.Op{Kind: wal.OpUndelete, Rec: local})
	was := u.Rel.Undelete(local)
	u.ingestMu.Unlock()
	if werr == nil {
		w.logs[s].Commit(lsn) //grovevet:ignore droppederr Undelete keeps its bool signature; a commit failure latches and surfaces via WALError
	}
	return was
}

// Tag attaches a key=value tag to the record with global id g.
func (c *Coordinator) Tag(g uint32, key, value string) error {
	u, local, err := c.Locate(g)
	if err != nil {
		return err
	}
	w := c.wal.Load()
	if w == nil || key == "" {
		// An empty key never reaches the log: the relation rejects it, and
		// logging an op replay would refuse to decode would tear the prefix.
		return u.Rel.Tag(local, key, value)
	}
	s := int(g % uint32(len(c.units)))
	u.ingestMu.Lock() //grovevet:ignore lockorder the log append must happen under ingestMu so file order equals apply order
	lsn, werr := w.logs[s].Append(wal.Op{Kind: wal.OpTag, Rec: local, Key: key, Val: value})
	terr := u.Rel.Tag(local, key, value)
	u.ingestMu.Unlock()
	if werr == nil {
		werr = w.logs[s].Commit(lsn)
	}
	if terr != nil {
		return terr
	}
	if werr != nil {
		return fmt.Errorf("shard %d: %w", s, werr)
	}
	return werr
}

// TaggedWith returns the global ids of the records tagged key=value. The
// result is always a fresh bitmap copied under each shard's read lock, so it
// stays valid after concurrent mutations.
func (c *Coordinator) TaggedWith(key, value string) *bitmap.Bitmap {
	out := bitmap.New()
	for i, u := range c.units {
		u.Rel.BeginRead()
		b := u.Rel.FetchTagBitmap(key, value)
		if len(c.units) == 1 {
			out = out.Or(b)
		} else {
			c.translateInto(out, b, i)
		}
		u.Rel.EndRead()
	}
	return out
}

// Optimize recompresses every shard's bitmap columns.
func (c *Coordinator) Optimize() {
	for _, u := range c.units {
		u.Rel.RunOptimize()
	}
}

// --- views ------------------------------------------------------------------

// MaterializeView materializes one graph view under the same name on every
// shard (views must exist uniformly or per-shard plans would diverge).
func (c *Coordinator) MaterializeView(name string, edges []colstore.EdgeID) error {
	for _, u := range c.units {
		if _, err := u.Rel.MaterializeView(name, edges); err != nil {
			return err
		}
	}
	return nil
}

// MaterializeAggViewOn materializes one aggregate view on every shard.
func (c *Coordinator) MaterializeAggViewOn(name string, path []colstore.EdgeID, fn agg.Func, measure string) error {
	for _, u := range c.units {
		if _, err := u.Rel.MaterializeAggViewOn(name, path, fn, measure); err != nil {
			return err
		}
	}
	return nil
}

// MaterializeGraphViews runs the §5 advisor (selection is purely
// workload-driven, so shard 0's advisor speaks for all) and materializes the
// selected views on every shard under the same names.
func (c *Coordinator) MaterializeGraphViews(workload []*graph.Graph, k, minSup int) ([]string, error) {
	adv := &view.Advisor{Rel: c.units[0].Rel, Reg: c.reg, MinSup: minSup}
	names, err := adv.MaterializeGraphViews(workload, k)
	if err != nil {
		return names, err
	}
	for _, name := range names {
		v := c.units[0].Rel.View(name)
		for _, u := range c.units[1:] {
			if _, err := u.Rel.MaterializeView(name, v.Edges); err != nil {
				return names, err
			}
		}
	}
	return names, nil
}

// MaterializeAggViews is MaterializeGraphViews for aggregate views.
func (c *Coordinator) MaterializeAggViews(workload []*graph.Graph, fn agg.Func, k, minSup int) ([]string, error) {
	adv := &view.Advisor{Rel: c.units[0].Rel, Reg: c.reg, MinSup: minSup}
	names, err := adv.MaterializeAggViews(workload, fn, k)
	if err != nil {
		return names, err
	}
	for _, name := range names {
		v := c.units[0].Rel.AggView(name)
		bound, ok := agg.ByName(v.Func)
		if !ok {
			return names, fmt.Errorf("shard: unknown aggregate function %q", v.Func)
		}
		for _, u := range c.units[1:] {
			if _, err := u.Rel.MaterializeAggViewOn(name, v.Path, bound, v.MeasureName); err != nil {
				return names, err
			}
		}
	}
	return names, nil
}

// DropAllViews removes every materialized view on every shard.
func (c *Coordinator) DropAllViews() {
	for _, u := range c.units {
		u.Rel.DropAllViews()
	}
}

// ClusterPartitions recomputes the vertical-partition assignment on every
// shard around the same workload.
func (c *Coordinator) ClusterPartitions(workload [][]colstore.EdgeID) error {
	for _, u := range c.units {
		if _, err := u.Rel.ClusterPartitions(workload); err != nil {
			return err
		}
	}
	return nil
}

// ViewUsage sums per-view usage counts across shards.
func (c *Coordinator) ViewUsage() map[string]int64 {
	out := make(map[string]int64)
	for _, u := range c.units {
		for name, n := range u.Rel.ViewUsage() {
			out[name] += n
		}
	}
	return out
}

// --- engine configuration ---------------------------------------------------

// SetUseViews toggles view-aware rewriting on every shard engine.
func (c *Coordinator) SetUseViews(use bool) {
	for _, u := range c.units {
		u.Eng.UseViews = use
	}
}

// SetParallelPaths toggles concurrent per-path aggregation on every shard
// engine.
func (c *Coordinator) SetParallelPaths(on bool) {
	for _, u := range c.units {
		u.Eng.ParallelPaths = on
	}
}

// EnableCache attaches a result cache to every shard engine, splitting the
// capacity evenly (capacity ≤ 0 selects each cache's default). A mutation
// invalidates only its own shard's slice — the other shards' cached answers
// remain exact because their data did not change. enable=false detaches.
func (c *Coordinator) EnableCache(enable bool, capacity int) {
	n := len(c.units)
	per := capacity
	if enable && n > 1 && capacity > 0 {
		per = (capacity + n - 1) / n
	}
	for _, u := range c.units {
		if enable {
			u.Eng.EnableCache(query.NewResultCache(per))
		} else {
			u.Eng.EnableCache(nil)
		}
	}
}

// CacheStats sums the per-shard result-cache counters.
func (c *Coordinator) CacheStats() query.CacheStats {
	var st query.CacheStats
	for _, u := range c.units {
		if cache := u.Eng.Cache(); cache != nil {
			s := cache.Stats()
			st.Hits += s.Hits
			st.Misses += s.Misses
			st.Evictions += s.Evictions
		}
	}
	return st
}

// SetMetrics attaches one shared metrics bundle to every shard engine
// (QueryMetrics is atomic counters, safe to share).
func (c *Coordinator) SetMetrics(m *obs.QueryMetrics) {
	for _, u := range c.units {
		u.Eng.SetMetrics(m)
	}
}

// SetTraces attaches a trace ring (nil disables). The coordinator owns it:
// with N > 1 each scatter-gathered query records one hierarchical root trace
// whose children are the per-shard engine traces. The ring is also attached
// to every shard engine, so batch sub-queries (executed whole-batch per
// shard) record flat traces labelled with their shard id.
func (c *Coordinator) SetTraces(t *obs.TraceRing) {
	c.traces = t
	for _, u := range c.units {
		u.Eng.SetTraces(t)
	}
}

// Traces returns the coordinator's trace ring (nil when tracing is off).
func (c *Coordinator) Traces() *obs.TraceRing { return c.traces }

// SetSlowLog attaches a slow-query log (nil disables). Single-query scatter
// paths record one coordinator-level entry per logical query with per-shard
// timings; batch sub-queries record per-shard entries through the engines.
func (c *Coordinator) SetSlowLog(l *obs.SlowLog) {
	c.slow = l
	for _, u := range c.units {
		u.Eng.SetSlowLog(l)
	}
}

// SlowLog returns the attached slow-query log (nil when disabled).
func (c *Coordinator) SlowLog() *obs.SlowLog { return c.slow }

// SetScatterHistograms attaches the scatter latency observers: queueWait[s]
// records shard s's dispatch→execution wait and merge records the gather
// phase's merge wall time. len(queueWait) must equal NumShards; nil detaches.
func (c *Coordinator) SetScatterHistograms(queueWait []*obs.Histogram, merge *obs.Histogram) {
	if queueWait != nil && len(queueWait) != len(c.units) {
		queueWait = nil
	}
	c.queueWait = queueWait
	c.mergeDur = merge
}

// SetSnapshotKeep sets the per-shard snapshot retention.
func (c *Coordinator) SetSnapshotKeep(n int) {
	for _, u := range c.units {
		u.Rel.SetSnapshotKeep(n)
	}
}

// --- aggregated accounting ----------------------------------------------------

// NumRecords sums the shard record counts.
func (c *Coordinator) NumRecords() int {
	total := 0
	for _, u := range c.units {
		total += u.Rel.NumRecords()
	}
	return total
}

// NumDeleted sums the shard soft-delete counts.
func (c *Coordinator) NumDeleted() int {
	total := 0
	for _, u := range c.units {
		total += u.Rel.NumDeleted()
	}
	return total
}

// TotalMeasures sums the shard measure counts.
func (c *Coordinator) TotalMeasures() int64 {
	var total int64
	for _, u := range c.units {
		total += u.Rel.TotalMeasures()
	}
	return total
}

// SizeBytes sums the shard payload sizes (base columns + views).
func (c *Coordinator) SizeBytes() int64 {
	var total int64
	for _, u := range c.units {
		total += u.Rel.SizeBytes()
	}
	return total
}

// BaseSizeBytes sums the shard base-column sizes.
func (c *Coordinator) BaseSizeBytes() int64 {
	var total int64
	for _, u := range c.units {
		total += u.Rel.BaseSizeBytes()
	}
	return total
}

// ViewSizeBytes sums the shard view sizes.
func (c *Coordinator) ViewSizeBytes() int64 {
	var total int64
	for _, u := range c.units {
		total += u.Rel.ViewSizeBytes()
	}
	return total
}

// StorageStats sums the shard storage-residency snapshots: logical vs.
// on-disk vs. resident bytes, the per-encoding block mix, and the pooled
// buffer counters.
func (c *Coordinator) StorageStats() colstore.StorageStats {
	var total colstore.StorageStats
	for _, u := range c.units {
		st := u.Rel.StorageStats()
		total.LogicalBytes += st.LogicalBytes
		total.OnDiskBytes += st.OnDiskBytes
		total.ResidentBytes += st.ResidentBytes
		total.PagedColumns += st.PagedColumns
		total.ResidentColumns += st.ResidentColumns
		for i := range total.BlockEncodings {
			total.BlockEncodings[i] += st.BlockEncodings[i]
		}
		total.Pool.Hits += st.Pool.Hits
		total.Pool.Misses += st.Pool.Misses
		total.Pool.Evictions += st.Pool.Evictions
		total.Pool.ResidentBlocks += st.Pool.ResidentBlocks
		total.Pool.ResidentBytes += st.Pool.ResidentBytes
		total.Pool.BudgetBytes += st.Pool.BudgetBytes
	}
	return total
}

// SetPageCacheBytes splits a total buffer-pool budget evenly across the
// shards' pools (≤0 = unbounded everywhere). No-op on shards with no paged
// columns.
func (c *Coordinator) SetPageCacheBytes(n int64) {
	per := n
	if n > 0 {
		per = n / int64(len(c.units))
		if per < 1 {
			per = 1
		}
	}
	for _, u := range c.units {
		u.Rel.SetPageCacheBytes(per)
	}
}

// PageError returns the first sticky page-fault error across the shards, if
// any lazy block load has failed.
func (c *Coordinator) PageError() error {
	for _, u := range c.units {
		if err := u.Rel.PageError(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every shard relation's cached snapshot file handles and
// closes the write-ahead log (final fsync included), returning the first
// error.
func (c *Coordinator) Close() error {
	first := c.CloseWAL()
	for _, u := range c.units {
		if err := u.Rel.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MaxPartitions returns the widest shard's vertical-partition count (shards
// share the schema, so the counts normally agree; max is the conservative
// report).
func (c *Coordinator) MaxPartitions() int {
	m := 0
	for _, u := range c.units {
		if p := u.Rel.NumPartitions(); p > m {
			m = p
		}
	}
	return m
}

// MeasureNames unions the shard measure-name sets, sorted. Records carrying
// a named measure may all have landed on one shard, so no single shard's
// list is authoritative.
func (c *Coordinator) MeasureNames() []string {
	return unionSorted(func(u *Unit) []string { return u.Rel.MeasureNames() }, c.units)
}

// TagKeys unions the shard tag-key sets, sorted.
func (c *Coordinator) TagKeys() []string {
	return unionSorted(func(u *Unit) []string { return u.Rel.TagKeys() }, c.units)
}

func unionSorted(get func(*Unit) []string, units []*Unit) []string {
	seen := make(map[string]struct{})
	for _, u := range units {
		for _, s := range get(u) {
			seen[s] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// IOStats sums the shard I/O accounting snapshots.
func (c *Coordinator) IOStats() colstore.Stats {
	var total colstore.Stats
	for _, u := range c.units {
		s := u.Rel.Tracker().Snapshot()
		total.BitmapColumnsFetched += s.BitmapColumnsFetched
		total.MeasureColumnsFetched += s.MeasureColumnsFetched
		total.MeasuresScanned += s.MeasuresScanned
		total.BytesRead += s.BytesRead
		total.PartitionJoins += s.PartitionJoins
		total.RecordsReturned += s.RecordsReturned
	}
	return total
}

// ResetIOStats zeroes every shard's I/O accounting counters.
func (c *Coordinator) ResetIOStats() {
	for _, u := range c.units {
		u.Rel.Tracker().Reset()
	}
}

// ioNow converts the summed shard trackers into the obs I/O shape — the
// coordinator-level analogue of Engine.ioNow, used for root-trace deltas.
// Exact while nothing else touches the trackers; on a live store the fan-out
// span's delta is the aggregate of all concurrent shard work, while the
// per-shard child traces carry each shard's own exact deltas.
func (c *Coordinator) ioNow() obs.IODelta {
	s := c.IOStats()
	return obs.IODelta{
		BitmapColumnsFetched:  int64(s.BitmapColumnsFetched),
		MeasureColumnsFetched: int64(s.MeasureColumnsFetched),
		MeasuresScanned:       s.MeasuresScanned,
		BytesRead:             s.BytesRead,
		PartitionJoins:        s.PartitionJoins,
		RecordsReturned:       s.RecordsReturned,
	}
}
