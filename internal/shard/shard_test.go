package shard

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"grove/internal/gpath"
	"grove/internal/graph"
	"grove/internal/query"
)

// smallRecord builds a path record A→B→C with the given base measure.
func smallRecord(t testing.TB, base float64) *graph.Record {
	t.Helper()
	rec := graph.NewRecord()
	if err := rec.SetEdge("A", "B", base); err != nil {
		t.Fatal(err)
	}
	if err := rec.SetEdge("B", "C", base+1); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecordIDMappingRoundTrips(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		c := New(n, 0)
		var ids []uint32
		for i := 0; i < 20; i++ {
			ids = append(ids, c.Add(smallRecord(t, float64(i))))
		}
		if c.NumRecords() != 20 {
			t.Fatalf("n=%d: NumRecords = %d", n, c.NumRecords())
		}
		seen := make(map[uint32]bool)
		for i, g := range ids {
			// Sequential adds assign global id == arrival index regardless of
			// the shard count — the invariant the differential tests rest on.
			if g != uint32(i) {
				t.Fatalf("n=%d: record %d got id %d", n, i, g)
			}
			if seen[g] {
				t.Fatalf("n=%d: duplicate id %d", n, g)
			}
			seen[g] = true
			u, local, err := c.Locate(g)
			if err != nil {
				t.Fatalf("n=%d: Locate(%d): %v", n, g, err)
			}
			if c.globalID(int(g)%n, local) != g || u != c.Unit(int(g)%n) {
				t.Fatalf("n=%d: Locate(%d) did not round-trip", n, g)
			}
		}
		if _, _, err := c.Locate(uint32(len(ids))); err == nil {
			t.Fatalf("n=%d: Locate past the end succeeded", n)
		}
	}
}

func TestConcurrentAddsLandUniqueIDs(t *testing.T) {
	c := New(4, 0)
	const writers, perWriter = 8, 50
	ids := make([][]uint32, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := graph.NewRecord()
				if err := rec.SetEdge("A", "B", float64(w*perWriter+i)); err != nil {
					panic(err)
				}
				ids[w] = append(ids[w], c.Add(rec))
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint32]bool)
	for _, batch := range ids {
		for _, g := range batch {
			if seen[g] {
				t.Fatalf("duplicate id %d", g)
			}
			seen[g] = true
		}
	}
	if c.NumRecords() != writers*perWriter {
		t.Fatalf("NumRecords = %d, want %d", c.NumRecords(), writers*perWriter)
	}
	// Round-robin placement keeps the shards balanced exactly.
	for i := 0; i < c.NumShards(); i++ {
		if got := c.Unit(i).Rel.NumRecords(); got != writers*perWriter/4 {
			t.Fatalf("shard %d holds %d records", i, got)
		}
	}
}

func TestMutatorsRouteByShard(t *testing.T) {
	c := New(3, 0)
	var ids []uint32
	for i := 0; i < 9; i++ {
		ids = append(ids, c.Add(smallRecord(t, float64(i))))
	}
	if live, err := c.Delete(ids[4]); err != nil || !live {
		t.Fatalf("Delete: %v %v", live, err)
	}
	if c.NumDeleted() != 1 {
		t.Fatalf("NumDeleted = %d", c.NumDeleted())
	}
	res, err := c.MatchContext(context.Background(), query.FromPath(pathAB()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Contains(ids[4]) {
		t.Fatal("deleted record still answers")
	}
	if res.Answer.Cardinality() != 8 {
		t.Fatalf("answer = %d records", res.Answer.Cardinality())
	}
	if !c.Undelete(ids[4]) {
		t.Fatal("Undelete")
	}
	if err := c.Tag(ids[7], "type", "rush"); err != nil {
		t.Fatal(err)
	}
	tagged := c.TaggedWith("type", "rush")
	if tagged.Cardinality() != 1 || !tagged.Contains(ids[7]) {
		t.Fatalf("tagged = %v", tagged)
	}
	if keys := c.TagKeys(); len(keys) != 1 || keys[0] != "type" {
		t.Fatalf("TagKeys = %v", keys)
	}
	if _, _, err := c.Locate(99); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Locate(99) = %v", err)
	}
}

func TestScatterSurfacesRealErrorOverCancellation(t *testing.T) {
	c := New(4, 0)
	boom := errors.New("boom")
	start := time.Now()
	_, err := scatter(context.Background(), c, func(ctx context.Context, s int, u *Unit) (int, error) {
		if s == 2 {
			return 0, boom
		}
		<-ctx.Done() // siblings block until the failure cancels them
		return 0, ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failure did not cancel the siblings promptly (%v)", elapsed)
	}
}

func TestScatterOuterCancellation(t *testing.T) {
	c := New(4, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := scatter(ctx, c, func(ctx context.Context, s int, u *Unit) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := 0; i < c.NumShards(); i++ {
		if p := c.Unit(i).Pending(); p != 0 {
			t.Fatalf("shard %d pending = %d after scatter returned", i, p)
		}
	}
}

func TestScatterRecoversPanics(t *testing.T) {
	c := New(3, 0)
	_, err := scatter(context.Background(), c, func(ctx context.Context, s int, u *Unit) (int, error) {
		if s == 1 {
			panic("kernel bug")
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
}

func TestPendingGaugeTracksInFlight(t *testing.T) {
	c := New(2, 0)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = scatter(context.Background(), c, func(ctx context.Context, s int, u *Unit) (int, error) {
			<-release
			return 0, nil
		})
	}()
	deadline := time.After(5 * time.Second)
	for {
		if c.Unit(0).Pending() == 1 && c.Unit(1).Pending() == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("pending gauges never reached 1 per shard")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	<-done
	if c.Unit(0).Pending() != 0 || c.Unit(1).Pending() != 0 {
		t.Fatal("pending gauges did not return to 0")
	}
}

func TestQueryCancellationAbandonsSubQueries(t *testing.T) {
	c := New(4, 0)
	for i := 0; i < 40; i++ {
		c.Add(smallRecord(t, float64(i)))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.MatchContext(ctx, query.FromPath(pathAB())); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchContext = %v, want context.Canceled", err)
	}
	if _, err := c.AggregateContext(ctx, query.NewPathAggQuery(pathAB().ToGraph(), query.Sum)); !errors.Is(err, context.Canceled) {
		t.Fatalf("AggregateContext = %v, want context.Canceled", err)
	}
	queries := []*query.GraphQuery{query.FromPath(pathAB()), query.FromPath(pathAB())}
	_, errs := c.ExecuteGraphBatchContext(ctx, queries, 2)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("batch query %d: %v, want context.Canceled", i, err)
		}
	}
}

func TestCacheSplitAndAggregatedStats(t *testing.T) {
	c := New(4, 0)
	for i := 0; i < 16; i++ {
		c.Add(smallRecord(t, float64(i)))
	}
	c.EnableCache(true, 64)
	q := query.FromPath(pathAB())
	for i := 0; i < 3; i++ {
		if _, err := c.MatchContext(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	st := c.CacheStats()
	// First round misses on every shard, the next two hit.
	if st.Misses != 4 || st.Hits != 8 {
		t.Fatalf("cache stats = %+v", st)
	}
	// A write to one shard must invalidate only that shard's slice.
	c.Add(smallRecord(t, 99)) // round-robin: lands on shard 0
	if _, err := c.MatchContext(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	st = c.CacheStats()
	if st.Misses != 5 || st.Hits != 11 {
		t.Fatalf("cache stats after one-shard write = %+v", st)
	}
	c.EnableCache(false, 0)
	if st := c.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("detached cache stats = %+v", st)
	}
}

func TestViewsReplicateAcrossShards(t *testing.T) {
	c := New(3, 0)
	for i := 0; i < 12; i++ {
		c.Add(smallRecord(t, float64(i)))
	}
	workload := []*graph.Graph{pathAB().ToGraph(), pathAB().ToGraph(), pathABC().ToGraph()}
	names, err := c.MaterializeGraphViews(workload, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("advisor selected nothing")
	}
	for i := 0; i < c.NumShards(); i++ {
		for _, name := range names {
			if c.Unit(i).Rel.View(name) == nil {
				t.Fatalf("view %s missing on shard %d", name, i)
			}
		}
	}
	aggNames, err := c.MaterializeAggViews(workload, query.Sum, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.NumShards(); i++ {
		for _, name := range aggNames {
			if c.Unit(i).Rel.AggView(name) == nil {
				t.Fatalf("agg view %s missing on shard %d", name, i)
			}
		}
	}
	// Queries stay correct (and bit-identical to unsharded) with views on.
	res, err := c.MatchContext(context.Background(), query.FromPath(pathAB()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Cardinality() != 12 {
		t.Fatalf("answer with views = %d", res.Answer.Cardinality())
	}
	c.DropAllViews()
	for i := 0; i < c.NumShards(); i++ {
		if len(c.Unit(i).Rel.Views()) != 0 {
			t.Fatalf("shard %d still has views", i)
		}
	}
}

func pathAB() gpath.Path  { return gpath.Closed("A", "B") }
func pathABC() gpath.Path { return gpath.Closed("A", "B", "C") }
