package shard

import (
	"context"
	"fmt"
	"testing"

	"grove/internal/gpath"
	"grove/internal/graph"
	"grove/internal/query"
)

// benchCoordinator builds an n-shard coordinator holding count path records
// over a small edge universe, plus a mixed query batch.
func benchCoordinator(b *testing.B, n, count int) (*Coordinator, []*query.GraphQuery) {
	b.Helper()
	c := New(n, 0)
	nodes := []string{"A", "B", "C", "D", "E", "F"}
	for i := 0; i < count; i++ {
		rec := graph.NewRecord()
		for j := 0; j < 3; j++ {
			from := nodes[(i+j)%len(nodes)]
			to := nodes[(i+j+1)%len(nodes)]
			if err := rec.SetEdge(from, to, float64(i+j)); err != nil {
				b.Fatal(err)
			}
		}
		c.Add(rec)
	}
	c.Optimize()
	var queries []*query.GraphQuery
	for j := 0; j < len(nodes)-1; j++ {
		queries = append(queries, query.FromPath(gpath.Closed(nodes[j], nodes[j+1])))
	}
	return c, queries
}

// BenchmarkShardedBatch is the bench-smoke probe for the scatter-gather
// path: a mixed graph-query batch fanned across 4 shards.
func BenchmarkShardedBatch(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			c, queries := benchCoordinator(b, n, 2000)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, errs := c.ExecuteGraphBatchContext(ctx, queries, 4); errs != nil {
					for _, err := range errs {
						if err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// BenchmarkShardedConcurrentAdd is the bench-smoke probe for multi-core
// writes: parallel Add calls routed round-robin across 4 shards.
func BenchmarkShardedConcurrentAdd(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			c := New(n, 0)
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					rec := graph.NewRecord()
					if err := rec.SetEdge("A", "B", float64(i)); err != nil {
						b.Fatal(err)
					}
					c.Add(rec)
					i++
				}
			})
		})
	}
}
