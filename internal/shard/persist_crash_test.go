package shard

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grove/internal/fsio"
	"grove/internal/graph"
)

// buildOldCoordinator deterministically builds the sweep's "old" committed
// state: 3 shards, 9 records, a tag and a deletion, so the state bytes
// exercise every column family.
func buildOldCoordinator(t testing.TB) *Coordinator {
	t.Helper()
	c := New(3, 0)
	for i := 0; i < 9; i++ {
		rec := graph.NewRecord()
		if err := rec.SetEdge("A", "B", float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := rec.SetEdge("B", "C", float64(i)+0.5); err != nil {
			t.Fatal(err)
		}
		c.Add(rec)
	}
	if err := c.Tag(4, "type", "rush"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(7); err != nil {
		t.Fatal(err)
	}
	return c
}

// mutateCoordinator advances old state to the sweep's "new" state: records
// land on every shard and a view materializes everywhere, so each shard's
// snapshot genuinely changes.
func mutateCoordinator(t testing.TB, c *Coordinator) {
	t.Helper()
	for i := 0; i < 6; i++ {
		rec := graph.NewRecord()
		if err := rec.SetEdge("C", "D", float64(100+i)); err != nil {
			t.Fatal(err)
		}
		c.Add(rec)
	}
	if err := c.MaterializeView("v", c.Registry().IDs([]graph.EdgeKey{graph.E("A", "B")})); err != nil {
		t.Fatal(err)
	}
}

// stateBytes saves c into a fresh directory and concatenates every shard's
// pinned-generation snapshot files. Saves are deterministic, so two
// coordinators with equal record state produce equal bytes. The registry is
// deliberately excluded: it is append-only and committed before the shard
// cut, so a crashed save legitimately leaves a newer registry alongside the
// old record state (extra registered keys map to ids no old record uses).
func stateBytes(t testing.TB, c *Coordinator) []byte {
	t.Helper()
	dir := t.TempDir()
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	m, err := readShardsManifest(fsio.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	appendFile := func(path string) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b...)
		buf = append(buf, 0)
	}
	for i := 0; i < m.NumShards; i++ {
		snap := filepath.Join(dir, shardDirName(i), m.Generations[i])
		appendFile(filepath.Join(snap, "manifest.json"))
		appendFile(filepath.Join(snap, "data.bin"))
	}
	return buf
}

// TestShardedSaveFaultSweep crashes a coordinated save at every single I/O
// operation — registry write, each shard's snapshot sequence, the SHARDS.json
// commit — with and without torn writes, and asserts that Load afterwards
// reconstructs the complete old cross-shard cut or the complete new one,
// bit-exactly: never an error, never a cut mixing shards from both.
//
// Snapshot retention is squeezed to 1 so the sweep also proves the GC
// protection: without pinning the manifest's generations, a shard whose save
// completed before the crash would collect the old generation the durable
// manifest still points at.
func TestShardedSaveFaultSweep(t *testing.T) {
	old := buildOldCoordinator(t)
	refOld := stateBytes(t, old)
	{
		probe := buildOldCoordinator(t)
		mutateCoordinator(t, probe)
		refNew := stateBytes(t, probe)
		if bytes.Equal(refOld, refNew) {
			t.Fatal("fixtures must differ for the sweep to mean anything")
		}
	}

	// One unarmed run counts the save's total operations T; the sweep then
	// crashes at every k in [1, T]. Each k rebuilds the coordinator and the
	// seeded directory from scratch, so the op sequence is identical.
	fault := fsio.NewFaultFS(fsio.OS())
	runSave := func(k int64, torn bool) (dir string, ops int64, opLog []string, saveErr error) {
		dir = t.TempDir()
		c := buildOldCoordinator(t)
		c.SetSnapshotKeep(1)
		if err := c.Save(dir); err != nil {
			t.Fatal(err)
		}
		mutateCoordinator(t, c)
		fault.SetTornWrites(torn)
		fault.FailAt(k)
		saveErr = c.SaveFS(fault, dir)
		ops = fault.Ops()
		opLog = fault.OpLog()
		fault.FailAt(0)
		return dir, ops, opLog, saveErr
	}

	_, total, _, err := runSave(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if total < 30 {
		t.Fatalf("suspiciously few operations counted: %d", total)
	}

	var refNew []byte
	for _, torn := range []bool{false, true} {
		var sawOld, sawNew bool
		for k := int64(1); k <= total; k++ {
			dir, _, opLog, saveErr := runSave(k, torn)
			if saveErr == nil {
				t.Fatalf("k=%d torn=%v: injected fault did not surface from Save", k, torn)
			}
			got, err := Load(dir)
			if err != nil {
				t.Fatalf("k=%d torn=%v: Load after crashed save failed: %v\nops:\n%s",
					k, torn, err, strings.Join(opLog, "\n"))
			}
			b := stateBytes(t, got)
			if refNew == nil {
				// Lazily capture the new-state reference from the first
				// post-commit-point crash (identical to a probe rebuild, but
				// avoids relying on rebuild determinism twice).
				probe := buildOldCoordinator(t)
				mutateCoordinator(t, probe)
				refNew = stateBytes(t, probe)
			}
			switch {
			case bytes.Equal(b, refOld):
				sawOld = true
			case bytes.Equal(b, refNew):
				sawNew = true
			default:
				t.Fatalf("k=%d torn=%v: Load yielded a state that is neither old nor new\nops:\n%s",
					k, torn, strings.Join(opLog, "\n"))
			}
		}
		if !sawOld || !sawNew {
			t.Fatalf("torn=%v: sweep did not cross the commit point (old=%v new=%v)", torn, sawOld, sawNew)
		}
	}
}

// blockManifestFS fails any Create touching the SHARDS.json commit, leaving
// every other operation intact. Unlike an op-count fault, it crashes at the
// same logical point on every attempt even as GC and directory contents shift
// between attempts.
type blockManifestFS struct{ fsio.FS }

func (b blockManifestFS) Create(name string) (fsio.File, error) {
	if strings.HasPrefix(filepath.Base(name), manifestFile) {
		return nil, errors.New("injected: manifest write blocked")
	}
	return b.FS.Create(name)
}

// TestShardedRepeatedCrashedSavesKeepRollbackCut asserts the GC-protection
// invariant directly: many crashed saves in a row (each landing new per-shard
// generations with keep=1) must never collect the cut the durable manifest
// pins, and Load must keep yielding the old state bit-exactly.
func TestShardedRepeatedCrashedSavesKeepRollbackCut(t *testing.T) {
	refOld := stateBytes(t, buildOldCoordinator(t))
	dir := t.TempDir()
	c := buildOldCoordinator(t)
	c.SetSnapshotKeep(1)
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	mutateCoordinator(t, c)

	// Every attempt completes each shard's snapshot (installing a fresh
	// generation and running GC with keep=1) and then dies at the SHARDS.json
	// commit, so the durable manifest keeps pinning the old cut.
	blocked := blockManifestFS{fsio.OS()}
	for attempt := 0; attempt < 3; attempt++ {
		if err := c.SaveFS(blocked, dir); err == nil {
			t.Fatalf("attempt %d: injected fault did not surface", attempt)
		}
		got, err := Load(dir)
		if err != nil {
			t.Fatalf("attempt %d: Load failed: %v", attempt, err)
		}
		if !bytes.Equal(stateBytes(t, got), refOld) {
			t.Fatalf("attempt %d: rollback cut no longer loads the old state", attempt)
		}
	}
	// And once the save completes, the new cut commits.
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	probe := buildOldCoordinator(t)
	mutateCoordinator(t, probe)
	if !bytes.Equal(stateBytes(t, got), stateBytes(t, probe)) {
		t.Fatal("completed save did not land the new state")
	}
}

func TestShardedSaveLoadRoundTrip(t *testing.T) {
	c := buildOldCoordinator(t)
	dir := t.TempDir()
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	if !IsShardedDir(dir) {
		t.Fatal("saved directory not detected as sharded")
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != 3 || got.NumRecords() != 9 || got.NumDeleted() != 1 {
		t.Fatalf("loaded %d shards, %d records, %d deleted", got.NumShards(), got.NumRecords(), got.NumDeleted())
	}
	if !bytes.Equal(stateBytes(t, c), stateBytes(t, got)) {
		t.Fatal("round-trip changed state")
	}
	// New adds keep the round-robin cursor: the next id continues the global
	// sequence instead of colliding with a loaded record.
	rec := graph.NewRecord()
	if err := rec.SetEdge("A", "B", 42); err != nil {
		t.Fatal(err)
	}
	if id := got.Add(rec); id != 9 {
		t.Fatalf("post-load Add assigned id %d, want 9", id)
	}
}
