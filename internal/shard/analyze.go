package shard

import (
	"grove/internal/bitmap"
	"grove/internal/graph"
	"grove/internal/obs"
	"grove/internal/query"
)

// ExplainAnalyze computes a graph query's plan and executes it once per shard
// with tracing forced on, returning the plan together with a hierarchical
// observation: the root trace covers the whole scatter-gather (fan-out and
// merge phases, coordinator-level I/O totals) and carries one child trace per
// shard with that shard's exact per-phase I/O.
//
// Shards run sequentially on the caller's goroutine — like the single-shard
// ExplainAnalyze, the point is exact attribution, not representative latency —
// so the observed I/O deltas are exact: the root's fetch counts equal the sum
// over the children, and each child's bitmap fetches equal the plan's
// BitmapsFetched against that shard's slice of the records. The per-shard runs
// bypass result caches, serving metrics, the trace ring, and the slow log
// (see Engine.ExplainAnalyze).
func (c *Coordinator) ExplainAnalyze(q *query.GraphQuery) (*query.ExplainAnalysis, error) {
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return u.Eng.ExplainAnalyze(q)
	}
	// Shards share the schema and views, so shard 0's plan represents all.
	plan, err := c.units[0].Eng.Explain(q)
	if err != nil {
		return nil, err
	}
	root := obs.StartTrace(obs.KindGraph, q.String(), c.ioNow())
	root.SetShard(obs.ShardCoordinator)
	root.Begin(obs.PhaseFanOut, c.ioNow())
	children := make([]obs.Trace, len(c.units))
	answers := make([]*bitmap.Bitmap, len(c.units))
	records := 0
	for s, u := range c.units {
		u.pending.Add(1)
		a, err := u.Eng.ExplainAnalyze(q)
		u.pending.Add(-1)
		if err != nil {
			return nil, err
		}
		children[s] = a.Trace
		answers[s] = a.Answer
		records += a.Records
	}
	root.Begin(obs.PhaseMerge, c.ioNow()) // closes the fan-out span
	for _, ch := range children {
		root.AddChild(ch)
	}
	merged := c.mergeBitmaps(answers)
	return &query.ExplainAnalysis{
		Plan:    plan,
		Trace:   root.Finish(c.ioNow()),
		Records: records,
		Answer:  merged,
	}, nil
}

// ExplainAnalyzeGraph is a convenience wrapper over ExplainAnalyze for a bare
// graph.
func (c *Coordinator) ExplainAnalyzeGraph(g *graph.Graph) (*query.ExplainAnalysis, error) {
	return c.ExplainAnalyze(query.NewGraphQuery(g))
}
