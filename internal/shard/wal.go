package shard

import (
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"

	"grove/internal/fsio"
	"grove/internal/graph"
	"grove/internal/obs"
	"grove/internal/wal"
)

// Write-ahead logging across the shard layer.
//
// One log per shard, living next to that shard's snapshot store:
//
//	single shard:  dir/wal.log
//	sharded:       dir/shard-000/wal.log, dir/shard-001/wal.log, …
//
// Every mutator follows the same discipline: under the shard's ingestMu it
// first appends the op's frame to the log, then applies the op in memory, so
// file order always equals apply order and replay reconstructs identical
// record ids. The fsync (Commit) happens outside ingestMu so concurrent
// writers on one shard batch onto one fsync (group commit).
//
// Cross-shard consistency: a checkpoint stalls ingest on every shard (all
// ingestMu held), snapshots each shard, writes the SHARDS.json manifest
// recording each log's LSN at the cut, and only after that commit point
// resets the logs. The manifest's generation pins + WAL LSNs mean a load can
// never mix a shard's snapshot with another cut's log frames: a log replays
// only over exactly the generation its header pins, starting at exactly the
// LSN the manifest recorded.
//
// Failure model: the log is the durability *floor*, never an availability
// ceiling. If an append or fsync fails, the log latches the error, stops
// recording (keeping the file a clean prefix of acknowledged ops) and the
// store keeps serving from memory; WALError surfaces the condition.

// walState is the attached-log bundle, swapped in atomically so mutators on
// the hot path pay one pointer load when WAL is disabled.
type walState struct {
	fs   fsio.FS
	dir  string
	cfg  wal.Config
	logs []*wal.Log
}

// walAnchor captures, at load time, what a shard's in-memory state
// corresponds to on disk: the LSN replay stopped at, how many ops were
// replayed, and the relation's version counter right afterwards. EnableWAL
// uses it to tell "still exactly snapshot+log" (cheap attach) from "mutated
// since load" (must checkpoint first).
type walAnchor struct {
	nextLSN uint64
	applied int
	version uint64
}

// walPath returns shard s's log path under the store layout for n shards.
func walPath(dir string, s, n int) string {
	if n == 1 {
		return filepath.Join(dir, wal.FileName)
	}
	return filepath.Join(dir, shardDirName(s), wal.FileName)
}

// WALEnabled reports whether a write-ahead log is attached.
func (c *Coordinator) WALEnabled() bool { return c.wal.Load() != nil }

// WALDir returns the directory the attached log extends ("" when disabled).
func (c *Coordinator) WALDir() string {
	if w := c.wal.Load(); w != nil {
		return w.dir
	}
	return ""
}

// WALError returns the first sticky log failure across the shards: non-nil
// means some suffix of acknowledged ops is not reaching the disk and the
// operator should checkpoint and re-enable.
func (c *Coordinator) WALError() error {
	w := c.wal.Load()
	if w == nil {
		return nil
	}
	for i, l := range w.logs {
		if err := l.Err(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// WALStats aggregates the per-shard log counters plus the replay counters of
// the last load.
type WALStats struct {
	Enabled bool
	Policy  string
	// Appends/AppendedBytes/Fsyncs/Resets sum the per-shard counters.
	Appends, AppendedBytes, Fsyncs, Resets int64
	// ReplayedOps counts ops re-applied at load; SkippedLogs counts logs
	// ignored at load (stale generation, corrupt header, LSN mismatch).
	ReplayedOps, SkippedLogs int64
	// Shards holds each log's own snapshot, indexed by shard.
	Shards []wal.Stats
}

// WALStats snapshots the write-ahead log counters (zero-valued when WAL is
// off, except the replay counters which survive from load time).
func (c *Coordinator) WALStats() WALStats {
	st := WALStats{
		ReplayedOps: c.walReplayed.Load(),
		SkippedLogs: c.walSkipped.Load(),
	}
	w := c.wal.Load()
	if w == nil {
		return st
	}
	st.Enabled = true
	st.Policy = w.cfg.Policy.String()
	st.Shards = make([]wal.Stats, len(w.logs))
	for i, l := range w.logs {
		s := l.Stats()
		st.Shards[i] = s
		st.Appends += s.Appends
		st.AppendedBytes += s.AppendedBytes
		st.Fsyncs += s.Fsyncs
		st.Resets += s.Resets
	}
	return st
}

// --- replay -----------------------------------------------------------------

// walApplier routes decoded ops into one shard through exactly the live
// mutator code paths (LoadRecord, SetEdge*, UpdateViewsForRecord), so replay
// maintains views incrementally the same way live ingest does.
type walApplier struct {
	c *Coordinator
	u *Unit
}

func (a walApplier) ApplyAdd(op wal.Op) error {
	graph.LoadRecord(a.u.Rel, a.c.reg, op.Record)
	return nil
}

func (a walApplier) ApplyAppendEdge(op wal.Op) error {
	if int64(op.Rec) >= int64(a.u.Rel.NumRecords()) {
		return fmt.Errorf("append-edge targets record %d of %d", op.Rec, a.u.Rel.NumRecords())
	}
	applyAppendEdge(a.u, a.c.reg, op)
	return nil
}

func (a walApplier) ApplyDelete(op wal.Op) error {
	_, err := a.u.Rel.Delete(op.Rec)
	return err
}

func (a walApplier) ApplyUndelete(op wal.Op) error {
	if int64(op.Rec) >= int64(a.u.Rel.NumRecords()) {
		return fmt.Errorf("undelete targets record %d of %d", op.Rec, a.u.Rel.NumRecords())
	}
	a.u.Rel.Undelete(op.Rec)
	return nil
}

func (a walApplier) ApplyTag(op wal.Op) error {
	return a.u.Rel.Tag(op.Rec, op.Key, op.Val)
}

// applyAppendEdge is the shared in-memory effect of an append-edge op, used
// by both the live path and replay.
func applyAppendEdge(u *Unit, reg *graph.Registry, op wal.Op) {
	eid := reg.ID(graph.E(op.From, op.To))
	switch {
	case !op.HasValue:
		u.Rel.SetEdge(op.Rec, eid)
	case op.Measure == graph.DefaultMeasure:
		u.Rel.SetEdgeMeasure(op.Rec, eid, op.Value)
	default:
		u.Rel.SetEdgeMeasureNamed(op.Rec, eid, op.Measure, op.Value)
	}
	u.Rel.UpdateViewsForRecord(op.Rec)
}

// ReplayWALFS replays each shard's write-ahead log atop its loaded snapshot.
// pinned, when non-nil, is the manifest's per-shard replay LSN floor: a log
// whose BaseLSN disagrees belongs to a different cut and is skipped. Shards
// replay sequentially in index order so registry edge-id assignment is
// deterministic — a store replayed at 1 shard and at N shards yields
// identical global state.
//
// Replay is read-only on the filesystem: torn tails are detected and ignored
// here, truncated later by EnableWAL (the writer). A log pinned to a
// generation other than the one actually loaded is skipped entirely — its
// ops are either already inside the newer snapshot or belong to a cut that
// was rolled back; applying them would double-apply or corrupt.
func (c *Coordinator) ReplayWALFS(fs fsio.FS, dir string, pinned []uint64) error {
	n := len(c.units)
	anchors := make([]walAnchor, n)
	var root *obs.ActiveTrace
	if c.traces != nil {
		root = obs.StartTrace(obs.KindWALReplay, dir, c.ioNow())
		root.SetShard(obs.ShardCoordinator)
		root.Begin(obs.PhaseWALApply, c.ioNow())
	}
	for i, u := range c.units {
		res, err := wal.Scan(fs, walPath(dir, i, n))
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		gen := u.Rel.SourceGeneration()
		next := uint64(1)
		if pinned != nil && pinned[i] > 0 {
			next = pinned[i]
		}
		switch {
		case res.Missing():
			// No log: the snapshot is the whole state.
		case !res.HeaderOK, res.Header.Gen != gen,
			pinned != nil && pinned[i] > 0 && res.Header.BaseLSN != pinned[i]:
			// Unreadable identity, or a log extending some other snapshot
			// generation / cut: never apply a frame of it.
			c.walSkipped.Add(1)
		default:
			a := walApplier{c: c, u: u}
			for _, op := range res.Ops {
				if err := wal.Apply(a, op); err != nil {
					return fmt.Errorf("shard %d: wal replay of LSN %d: %w", i, op.LSN, err)
				}
			}
			c.walReplayed.Add(int64(len(res.Ops)))
			next = res.NextLSN
			anchors[i].applied = len(res.Ops)
		}
		anchors[i].nextLSN = next
		anchors[i].version = u.Rel.Version()
	}
	// Replayed adds moved the record counts; resume round-robin placement
	// past them, exactly as NewFromRelations does for snapshot records.
	c.rr.Store(uint64(c.NumRecords()))
	c.walAnchor = anchors
	c.walLoadDir = dir
	if root != nil {
		c.traces.Add(root.Finish(c.ioNow()))
	}
	return nil
}

// --- attach -----------------------------------------------------------------

// AttachWAL enables write-ahead logging on the OS filesystem.
func (c *Coordinator) AttachWAL(dir string, cfg wal.Config) error {
	return c.AttachWALFS(fsio.OS(), dir, cfg)
}

// AttachWALFS enables write-ahead logging under dir. When the in-memory
// state is still exactly "snapshot + replayed log" from a Load of the same
// dir, the existing logs are resumed in place (truncating any torn tail);
// otherwise — a fresh store, a different directory, or mutations since load
// — the store is checkpointed first so the logs start empty atop a snapshot
// that fully covers memory. Either way, after AttachWALFS returns every
// acknowledged mutation is recoverable per the configured fsync policy.
func (c *Coordinator) AttachWALFS(fs fsio.FS, dir string, cfg wal.Config) error {
	c.saveMu.Lock() //grovevet:ignore lockorder attach is a setup-time operation; holding saveMu across its fsio work is the point
	defer c.saveMu.Unlock()
	if c.wal.Load() != nil {
		return fmt.Errorf("shard: write-ahead log already enabled (dir %s)", c.WALDir())
	}
	n := len(c.units)

	// Decide cheap resume vs checkpoint: every shard must still be exactly
	// what load left it (no mutations — version counters unchanged), in the
	// same directory, and its on-disk log must be resumable (matches what
	// replay consumed) or absent with nothing replayed. A log that diverged
	// while replayed ops live only in memory forces the checkpoint path:
	// truncating it would lose them.
	resume := c.walAnchor != nil && dir == c.walLoadDir
	scans := make([]*wal.ScanResult, n)
	if resume {
		for i, u := range c.units {
			gen := u.Rel.SourceGeneration()
			if gen == "" || u.Rel.Version() != c.walAnchor[i].version {
				resume = false
				break
			}
			res, err := wal.Scan(fs, walPath(dir, i, n))
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			scans[i] = res
			ok := res.HeaderOK && res.Header.Gen == gen && res.NextLSN == c.walAnchor[i].nextLSN
			if !ok && !(res.Missing() && c.walAnchor[i].applied == 0) {
				resume = false
				break
			}
		}
	}
	if !resume {
		return c.checkpointLocked(fs, dir, cfg, nil)
	}

	logs := make([]*wal.Log, n)
	fail := func(err error) error {
		for _, l := range logs {
			if l != nil {
				l.Close() //grovevet:ignore droppederr attach is already failing; closing partial logs is best-effort cleanup
			}
		}
		return err
	}
	for i, u := range c.units {
		var err error
		if scans[i].Missing() {
			logs[i], err = wal.Create(fs, walPath(dir, i, n), uint32(i), u.Rel.SourceGeneration(), c.walAnchor[i].nextLSN, cfg)
		} else {
			logs[i], err = wal.OpenAt(fs, walPath(dir, i, n), scans[i], cfg)
		}
		if err != nil {
			return fail(fmt.Errorf("shard %d: %w", i, err))
		}
	}
	c.wal.Store(&walState{fs: fs, dir: dir, cfg: cfg, logs: logs})
	return nil
}

// --- checkpoint -------------------------------------------------------------

// Checkpoint folds the write-ahead log into a fresh snapshot generation:
// ingest stalls, every shard snapshots, the commit point lands (CURRENT flip
// for one shard, SHARDS.json for many — recording each log's cut LSN), and
// only then are the logs reset, pinned to the new generations. A crash at
// any point recovers the same state: before the commit point the old
// snapshot + old log still replay to it; after, the new snapshot alone (or
// plus whatever landed in the reset log) carries it.
func (c *Coordinator) Checkpoint() error {
	w := c.wal.Load()
	if w == nil {
		return fmt.Errorf("shard: checkpoint requires an attached write-ahead log")
	}
	c.saveMu.Lock() //grovevet:ignore lockorder saveMu serializes whole checkpoint cuts; it is expected to block on fsio for their duration
	defer c.saveMu.Unlock()
	return c.checkpointLocked(w.fs, w.dir, w.cfg, w)
}

// checkpointLocked is the body of Checkpoint; it also serves AttachWALFS's
// bootstrap (w == nil: no logs yet — create them pinned to the snapshot this
// call writes). Caller holds saveMu.
func (c *Coordinator) checkpointLocked(fs fsio.FS, dir string, cfg wal.Config, w *walState) error {
	// Stall ingest on every shard for the whole cut: the snapshot contents,
	// the manifest's LSNs and the log resets must describe one instant.
	// Writers block for the duration of the save — that is the documented
	// cost of a checkpoint (DESIGN.md §14).
	for _, u := range c.units {
		u.ingestMu.Lock() //grovevet:ignore lockorder the ingest stall across the snapshot write is the checkpoint's correctness mechanism
	}
	defer func() {
		for _, u := range c.units {
			u.ingestMu.Unlock()
		}
	}()

	var root *obs.ActiveTrace
	if c.traces != nil {
		root = obs.StartTrace(obs.KindWALCheckpoint, dir, c.ioNow())
		root.SetShard(obs.ShardCoordinator)
		root.Begin(obs.PhaseSnapshot, c.ioNow())
	}

	n := len(c.units)
	lsns := make([]uint64, n)
	for i := range lsns {
		switch {
		case w != nil:
			lsns[i] = w.logs[i].NextLSN()
		case c.walAnchor != nil:
			lsns[i] = c.walAnchor[i].nextLSN
		default:
			lsns[i] = 1
		}
	}

	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: checkpoint: %w", err)
	}
	if err := c.reg.SaveFS(fs, filepath.Join(dir, registryFile)); err != nil {
		return err
	}

	gens := make([]string, n)
	if n == 1 {
		// Single shard keeps the flat layout; SaveFSGen's CURRENT flip is
		// the commit point.
		gen, err := c.units[0].Rel.SaveFSGen(fs, dir)
		if err != nil {
			return err
		}
		gens[0] = gen
	} else {
		if prev, err := readShardsManifest(fs, dir); err == nil && prev.NumShards == n {
			for i, u := range c.units {
				u.Rel.SetGCProtect(prev.Generations[i])
			}
		}
		for i, u := range c.units {
			gen, err := u.Rel.SaveFSGen(fs, filepath.Join(dir, shardDirName(i)))
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			gens[i] = gen
		}
		if err := writeShardsManifest(fs, dir, shardsManifest{
			FormatVersion: 1, NumShards: n, Generations: gens, WALLSNs: lsns,
		}); err != nil {
			return err
		}
		for i, u := range c.units {
			u.Rel.SetGCProtect(gens[i])
		}
	}

	// Past the commit point: the new cut is durable, so the logs' frames are
	// dead weight. Reset each log pinned to its new generation (or create
	// them, on the attach-bootstrap path). A reset/create failure cannot
	// lose data — the snapshot covers everything — but it does leave that
	// shard without a working log, so the first error is surfaced after all
	// shards have been attempted.
	if root != nil {
		root.Begin(obs.PhaseWALTruncate, c.ioNow())
	}
	var firstErr error
	logs := make([]*wal.Log, n)
	for i := range c.units {
		var err error
		if w != nil {
			logs[i] = w.logs[i]
			err = w.logs[i].Reset(gens[i])
		} else {
			logs[i], err = wal.Create(fs, walPath(dir, i, n), uint32(i), gens[i], lsns[i], cfg)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if root != nil {
		c.traces.Add(root.Finish(c.ioNow()))
	}
	if w == nil {
		if firstErr != nil {
			for _, l := range logs {
				if l != nil {
					l.Close() //grovevet:ignore droppederr attach bootstrap is already failing; closing partial logs is best-effort cleanup
				}
			}
			return firstErr
		}
		c.wal.Store(&walState{fs: fs, dir: dir, cfg: cfg, logs: logs})
	}
	return firstErr
}

// writeShardsManifest atomically replaces SHARDS.json.
func writeShardsManifest(fs fsio.FS, dir string, m shardsManifest) error {
	b, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	if err := fsio.WriteFileAtomic(fs, filepath.Join(dir, manifestFile), b); err != nil {
		return fmt.Errorf("shard: save %s: %w", manifestFile, err)
	}
	return nil
}

// SyncWAL forces an fsync on every shard's log regardless of policy; a
// no-op when WAL is disabled.
func (c *Coordinator) SyncWAL() error {
	w := c.wal.Load()
	if w == nil {
		return nil
	}
	var first error
	for i, l := range w.logs {
		if err := l.Sync(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}

// CloseWAL detaches and closes the logs (final fsync included). Mutations
// after CloseWAL are memory-only until the next Save.
func (c *Coordinator) CloseWAL() error {
	w := c.wal.Load()
	if w == nil {
		return nil
	}
	c.wal.Store(nil)
	var first error
	for _, l := range w.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- logged mutators --------------------------------------------------------

// Append adds a record like Add but also reports the write-ahead log's
// verdict: a non-nil error means the op is applied in memory yet NOT
// guaranteed durable (the log latched a failure). With WAL disabled it never
// errors.
func (c *Coordinator) Append(rec *graph.Record) (uint32, error) {
	n := len(c.units)
	s := 0
	if n > 1 {
		s = int((c.rr.Add(1) - 1) % uint64(n))
	}
	u := c.units[s]
	w := c.wal.Load()
	if w == nil {
		return c.globalID(s, graph.LoadRecord(u.Rel, c.reg, rec)), nil
	}
	u.ingestMu.Lock() //grovevet:ignore lockorder the log append must happen under ingestMu so file order equals apply order
	lsn, werr := w.logs[s].Append(wal.Op{Kind: wal.OpAddRecord, Record: rec})
	local := graph.LoadRecord(u.Rel, c.reg, rec)
	u.ingestMu.Unlock()
	id := c.globalID(s, local)
	if werr == nil {
		werr = w.logs[s].Commit(lsn)
	}
	if werr != nil {
		return id, fmt.Errorf("shard %d: %w", s, werr)
	}
	return id, nil
}

// AppendEdge adds one element (edge, or node when from == to) to record g,
// optionally with a measure value under name ("" = default). The record's
// membership in every matching view updates incrementally. Durability
// follows the attached log's policy, like Append.
func (c *Coordinator) AppendEdge(g uint32, from, to, name string, v float64, hasValue bool) error {
	if hasValue && (math.IsNaN(v) || math.IsInf(v, 0)) {
		return fmt.Errorf("shard: append-edge measure must be finite, got %v", v)
	}
	u, local, err := c.Locate(g)
	if err != nil {
		return err
	}
	op := wal.Op{Kind: wal.OpAppendEdge, Rec: local, From: from, To: to, Measure: name, Value: v, HasValue: hasValue}
	w := c.wal.Load()
	if w == nil {
		applyAppendEdge(u, c.reg, op)
		return nil
	}
	s := int(g % uint32(len(c.units)))
	u.ingestMu.Lock() //grovevet:ignore lockorder the log append must happen under ingestMu so file order equals apply order
	lsn, werr := w.logs[s].Append(op)
	applyAppendEdge(u, c.reg, op)
	u.ingestMu.Unlock()
	if werr == nil {
		werr = w.logs[s].Commit(lsn)
	}
	if werr != nil {
		return fmt.Errorf("shard %d: %w", s, werr)
	}
	return nil
}
