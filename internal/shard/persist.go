package shard

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"grove/internal/colstore"
	"grove/internal/fsio"
	"grove/internal/graph"
)

// On-disk layout of a sharded store directory:
//
//	registry.json          — shared element registry (append-only schema)
//	shard-000/             — shard 0's own generational snapshot store
//	  gen-000001/ CURRENT …
//	shard-001/
//	…
//	SHARDS.json            — the cross-shard manifest (committed LAST)
//
// Commit protocol, in write order:
//
//  1. registry.json — atomic (temp+fsync+rename). The registry is
//     append-only, so a newer registry next to older shard snapshots is
//     harmless: ids never change meaning, extra ids are simply unused.
//  2. each shard's snapshot via its own generational save — every shard
//     runs the full §11 protocol (tmp dir, fsync, rename, CURRENT flip),
//     so a crash inside any shard leaves that shard's previous generation
//     installed and loadable.
//  3. SHARDS.json — atomic, LAST. It pins the exact generation name of
//     every shard, so Load reconstructs the committed cross-shard cut by
//     loading those generations directly, ignoring the per-shard CURRENT
//     pointers (some of which may already point at generations from a save
//     that crashed before reaching step 3).
//
// The manifest write is therefore the commit point: a crash anywhere before
// it leaves the old SHARDS.json naming the old (complete, consistent)
// generation set; the instant after, the new set. No crash point can yield a
// mixed cut. The generations a durable manifest pins are GC-protected in
// each shard (Relation.SetGCProtect) so repeated crashed saves cannot
// collect the rollback cut out from under the manifest.

// manifestFile is the cross-shard manifest name; its presence marks a
// directory as a sharded store.
const manifestFile = "SHARDS.json"

// registryFile matches the single-shard layout's registry name.
const registryFile = "registry.json"

// shardsManifest is the decoded SHARDS.json.
type shardsManifest struct {
	FormatVersion int `json:"format_version"`
	NumShards     int `json:"num_shards"`
	// Generations[i] is the pinned snapshot generation of shard i
	// ("gen-000003").
	Generations []string `json:"generations"`
	// WALLSNs[i], when present, is the LSN shard i's write-ahead log resumes
	// at for this cut: a checkpoint records each log's next LSN at the
	// stalled instant the generations were cut. Replay refuses a log whose
	// header BaseLSN disagrees — that log extends some other cut, and mixing
	// it with these generations would break cross-shard consistency.
	WALLSNs []uint64 `json:"wal_lsns,omitempty"`
}

// shardDirName returns shard i's subdirectory name.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// IsShardedDir reports whether dir holds a sharded store (has SHARDS.json).
func IsShardedDir(dir string) bool {
	_, err := fsio.OS().Stat(filepath.Join(dir, manifestFile))
	return err == nil
}

// ShardDirs returns the per-shard snapshot directories the manifest at dir
// commits, in shard order.
func ShardDirs(dir string) ([]string, error) {
	m, err := readShardsManifest(fsio.OS(), dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, m.NumShards)
	for i := range out {
		out[i] = filepath.Join(dir, shardDirName(i))
	}
	return out, nil
}

// PinnedGenerations returns, per shard, the snapshot generation the durable
// SHARDS.json manifest commits. After a crashed save these may lag the
// shards' own CURRENT pointers — the manifest, not CURRENT, names the
// loadable cross-shard cut.
func PinnedGenerations(dir string) ([]string, error) {
	m, err := readShardsManifest(fsio.OS(), dir)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), m.Generations...), nil
}

// readShardsManifest reads and validates SHARDS.json.
func readShardsManifest(fs fsio.FS, dir string) (*shardsManifest, error) {
	b, err := fsio.ReadFile(fs, filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	var m shardsManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("shard: parse %s: %w", manifestFile, err)
	}
	if m.FormatVersion != 1 {
		return nil, fmt.Errorf("shard: %s format version %d not supported", manifestFile, m.FormatVersion)
	}
	if m.NumShards < 1 || len(m.Generations) != m.NumShards {
		return nil, fmt.Errorf("shard: %s inconsistent: %d shards, %d generations", manifestFile, m.NumShards, len(m.Generations))
	}
	if m.WALLSNs != nil && len(m.WALLSNs) != m.NumShards {
		return nil, fmt.Errorf("shard: %s inconsistent: %d shards, %d wal lsns", manifestFile, m.NumShards, len(m.WALLSNs))
	}
	return &m, nil
}

// Save persists the coordinator to dir using the OS filesystem.
func (c *Coordinator) Save(dir string) error { return c.SaveFS(fsio.OS(), dir) }

// SaveFS persists the coordinator to dir following the commit protocol
// above. On success the new generation set is durable and pinned; after a
// crash at any point, Load recovers the previous committed cut bit-for-bit.
func (c *Coordinator) SaveFS(fs fsio.FS, dir string) error {
	c.saveMu.Lock() //grovevet:ignore lockorder saveMu serializes whole cross-shard commit cuts; it is expected to block on fsio for their duration
	defer c.saveMu.Unlock()

	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	if err := c.reg.SaveFS(fs, filepath.Join(dir, registryFile)); err != nil {
		return err
	}

	// Protect the generations the durable manifest still pins: until the new
	// SHARDS.json lands, those are the rollback cut, and the per-shard saves
	// below must not GC them even across repeated crashed attempts.
	if prev, err := readShardsManifest(fs, dir); err == nil && prev.NumShards == len(c.units) {
		for i, u := range c.units {
			u.Rel.SetGCProtect(prev.Generations[i])
		}
	}

	gens := make([]string, len(c.units))
	for i, u := range c.units {
		gen, err := u.Rel.SaveFSGen(fs, filepath.Join(dir, shardDirName(i)))
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		gens[i] = gen
	}

	if err := writeShardsManifest(fs, dir, shardsManifest{
		FormatVersion: 1, NumShards: len(c.units), Generations: gens,
	}); err != nil {
		return err
	}

	// The new cut is durable: move GC protection onto it.
	for i, u := range c.units {
		u.Rel.SetGCProtect(gens[i])
	}
	return nil
}

// Load reads a sharded store from dir using the OS filesystem.
func Load(dir string) (*Coordinator, error) { return LoadFS(fsio.OS(), dir) }

// LoadFS reads a sharded store from dir: the manifest names the committed
// cross-shard cut, and every shard loads exactly its pinned generation —
// never its CURRENT pointer, which a crashed later save may have advanced.
// Each shard's write-ahead log (when present and pinned to exactly this cut)
// then replays atop its snapshot, recovering every op the log persisted
// since the checkpoint.
func LoadFS(fs fsio.FS, dir string) (*Coordinator, error) {
	m, err := readShardsManifest(fs, dir)
	if err != nil {
		return nil, fmt.Errorf("shard: load %s: %w", dir, err)
	}
	reg, err := graph.LoadRegistryFS(fs, filepath.Join(dir, registryFile))
	if err != nil {
		return nil, err
	}
	rels := make([]*colstore.Relation, m.NumShards)
	for i := range rels {
		rel, err := colstore.LoadGenerationFS(fs, filepath.Join(dir, shardDirName(i)), m.Generations[i])
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		// The loaded cut stays the rollback target until the next manifest
		// commits, so re-arm its GC protection.
		rel.SetGCProtect(m.Generations[i])
		rels[i] = rel
	}
	c := NewFromRelations(rels, reg)
	if err := c.ReplayWALFS(fs, dir, m.WALLSNs); err != nil {
		return nil, err
	}
	return c, nil
}
