package shard

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"grove/internal/gpath"
	"grove/internal/graph"
	"grove/internal/query"
)

// The differential harness: build the same record corpus into a 1-shard and
// an n-shard coordinator and assert that the full query surface — structural
// matches, boolean expressions, path aggregations (values compared by
// Float64bits, so NaN and signed zero must survive the merge), batches and
// text statements — answers bit-identically, including the total
// MeasuresScanned accounting (every record is scanned exactly once, in
// exactly one shard).

// fig2Records transcribes the paper's running example (Fig. 2 / Table 1):
// three records over edges e1=(A,B) e2=(A,C) e3=(C,E) e4=(A,D) e5=(D,E)
// e6=(E,F) e7=(F,G).
func fig2Records(t testing.TB) []*graph.Record {
	t.Helper()
	edges := []graph.EdgeKey{
		graph.E("A", "B"), graph.E("A", "C"), graph.E("C", "E"),
		graph.E("A", "D"), graph.E("D", "E"), graph.E("E", "F"), graph.E("F", "G"),
	}
	const absent = -1e300
	measures := [3][7]float64{
		{3, 4, 2, 1, 2, absent, absent},
		{absent, 1, 2, 2, 1, 4, 1},
		{absent, absent, absent, 5, 4, 3, 1},
	}
	var out []*graph.Record
	for _, m := range measures {
		rec := graph.NewRecord()
		for i, k := range edges {
			if m[i] != absent {
				if err := rec.SetEdge(k.From, k.To, m[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		out = append(out, rec)
	}
	return out
}

// randomRecords synthesizes records over a layered DAG universe (A0..D3),
// mixing in zero, negative-zero and negative measures so the float merge has
// something to get wrong.
func randomRecords(t testing.TB, rng *rand.Rand, numRecords int) []*graph.Record {
	t.Helper()
	var universe []graph.EdgeKey
	name := func(layer, i int) string {
		return string(rune('A'+layer)) + string(rune('0'+i))
	}
	for layer := 0; layer < 3; layer++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				universe = append(universe, graph.E(name(layer, i), name(layer+1, j)))
			}
		}
	}
	measurePool := []float64{1, 2, 9, -3, 0.5, 0.0, math.Copysign(0, -1), -7.25}
	var out []*graph.Record
	for r := 0; r < numRecords; r++ {
		rec := graph.NewRecord()
		n := 3 + rng.Intn(len(universe)/2)
		for k := 0; k < n; k++ {
			e := universe[rng.Intn(len(universe))]
			if err := rec.SetEdge(e.From, e.To, measurePool[rng.Intn(len(measurePool))]); err != nil {
				t.Fatal(err)
			}
		}
		out = append(out, rec)
	}
	return out
}

// buildPair loads records sequentially into a 1-shard and an n-shard
// coordinator, asserting both assign the same global ids.
func buildPair(t testing.TB, records []*graph.Record, n int) (*Coordinator, *Coordinator) {
	t.Helper()
	c1, cn := New(1, 0), New(n, 0)
	for i, rec := range records {
		id1, idn := c1.Add(rec), cn.Add(rec)
		if id1 != idn || id1 != uint32(i) {
			t.Fatalf("record %d: ids diverge (1-shard %d, %d-shard %d)", i, id1, n, idn)
		}
	}
	return c1, cn
}

func diffMatch(t *testing.T, c1, cn *Coordinator, q *query.GraphQuery) {
	t.Helper()
	r1, err1 := c1.MatchContext(context.Background(), q)
	rn, errn := cn.MatchContext(context.Background(), q)
	if (err1 == nil) != (errn == nil) {
		t.Fatalf("%s: errors diverge: %v vs %v", q.String(), err1, errn)
	}
	if err1 != nil {
		return
	}
	if !r1.Answer.Equals(rn.Answer) {
		t.Fatalf("%s: answers diverge:\n1-shard %v\nn-shard %v", q.String(), r1.Answer, rn.Answer)
	}
}

// diffAgg compares aggregation results bit-for-bit: record order, per-path
// values (by Float64bits — NaN vs NaN must agree, 0.0 vs -0.0 must not), and
// the fetched-measure totals.
func diffAgg(t *testing.T, c1, cn *Coordinator, q *query.PathAggQuery) {
	t.Helper()
	r1, err1 := c1.AggregateContext(context.Background(), q)
	rn, errn := cn.AggregateContext(context.Background(), q)
	if (err1 == nil) != (errn == nil) {
		t.Fatalf("%s: errors diverge: %v vs %v", q.String(), err1, errn)
	}
	if err1 != nil {
		return
	}
	assertAggEqual(t, q.String(), r1, rn)
}

func assertAggEqual(t *testing.T, label string, r1, rn *query.AggResult) {
	t.Helper()
	if !r1.Answer.Equals(rn.Answer) {
		t.Fatalf("%s: answer bitmaps diverge", label)
	}
	if len(r1.RecordIDs) != len(rn.RecordIDs) {
		t.Fatalf("%s: %d vs %d records", label, len(r1.RecordIDs), len(rn.RecordIDs))
	}
	for i := range r1.RecordIDs {
		if r1.RecordIDs[i] != rn.RecordIDs[i] {
			t.Fatalf("%s: record order diverges at %d: %d vs %d", label, i, r1.RecordIDs[i], rn.RecordIDs[i])
		}
	}
	if len(r1.Paths) != len(rn.Paths) || len(r1.Values) != len(rn.Values) {
		t.Fatalf("%s: path sets diverge", label)
	}
	for p := range r1.Values {
		for i := range r1.Values[p] {
			b1, bn := math.Float64bits(r1.Values[p][i]), math.Float64bits(rn.Values[p][i])
			if b1 != bn {
				t.Fatalf("%s: value[path %d][%d] diverges: %x (%v) vs %x (%v)",
					label, p, i, b1, r1.Values[p][i], bn, rn.Values[p][i])
			}
		}
	}
}

func TestDifferentialFig2Corpus(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		c1, cn := buildPair(t, fig2Records(t), n)

		for _, nodes := range [][]string{
			{"A", "B"}, {"A", "C", "E"}, {"A", "D", "E"}, {"A", "C", "E", "F"},
			{"E", "F", "G"}, {"A", "D", "E", "F", "G"}, {"X", "Y"},
		} {
			diffMatch(t, c1, cn, query.FromPath(gpath.Closed(nodes...)))
		}

		for _, f := range []query.AggFunc{query.Sum, query.Min, query.Max, query.Count} {
			for _, nodes := range [][]string{
				{"A", "C", "E", "F"}, {"A", "D", "E"}, {"E", "F", "G"}, {"A", "B"},
			} {
				diffAgg(t, c1, cn, query.NewPathAggQuery(gpath.Closed(nodes...).ToGraph(), f))
			}
		}

		// The §3.4 example must still read SUM[A,C,E,F] = 7 on record 2 (the
		// second record) after the merge — sanity that the harness itself
		// queries what it claims to.
		r, err := cn.AggregateContext(context.Background(),
			query.NewPathAggQuery(gpath.Closed("A", "C", "E", "F").ToGraph(), query.Sum))
		if err != nil {
			t.Fatal(err)
		}
		if len(r.RecordIDs) != 1 || r.RecordIDs[0] != 1 || r.Values[0][0] != 7 {
			t.Fatalf("n=%d: SUM[A,C,E,F] = %v @ %v", n, r.Values, r.RecordIDs)
		}

		// Boolean expressions and text statements.
		expr := query.Diff{
			A: query.Or{Operands: []query.Expr{
				query.Leaf{Q: query.FromPath(gpath.Closed("A", "D", "E"))},
				query.Leaf{Q: query.FromPath(gpath.Closed("A", "B"))},
			}},
			B: query.Leaf{Q: query.FromPath(gpath.Closed("F", "G"))},
		}
		b1, err1 := c1.EvalExprContext(context.Background(), expr)
		bn, errn := cn.EvalExprContext(context.Background(), expr)
		if err1 != nil || errn != nil {
			t.Fatalf("eval: %v / %v", err1, errn)
		}
		if !b1.Equals(bn) {
			t.Fatalf("n=%d: expression answers diverge", n)
		}

		for _, text := range []string{
			"[A,D,E] AND NOT [A,B]",
			"SUM [A,C,E,F]",
			"MAX [A,D,E,F,G]",
			"([A,B] OR [F,G]) AND [A,D]",
		} {
			s1, err1 := c1.ExecuteStatementContext(context.Background(), text)
			sn, errn := cn.ExecuteStatementContext(context.Background(), text)
			if (err1 == nil) != (errn == nil) {
				t.Fatalf("%q: errors diverge: %v vs %v", text, err1, errn)
			}
			if err1 != nil {
				continue
			}
			switch {
			case s1.IDs != nil:
				if sn.IDs == nil || !s1.IDs.Equals(sn.IDs) {
					t.Fatalf("%q: statement answers diverge", text)
				}
			case s1.Agg != nil:
				if sn.Agg == nil {
					t.Fatalf("%q: statement kinds diverge", text)
				}
				assertAggEqual(t, text, s1.Agg, sn.Agg)
			}
		}
	}
}

func TestDifferentialRandomCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	records := randomRecords(t, rng, 120)
	for _, n := range []int{2, 8} {
		c1, cn := buildPair(t, records, n)

		// Random structural queries drawn from stored records (usually
		// non-empty answers) plus their aggregations.
		for trial := 0; trial < 40; trial++ {
			rec := records[rng.Intn(len(records))]
			elems := rec.Elements()
			g := graph.NewGraph()
			for i, m := 0, 1+rng.Intn(4); i < m; i++ {
				g.AddElement(elems[rng.Intn(len(elems))])
			}
			diffMatch(t, c1, cn, query.NewGraphQuery(g))
			f := []query.AggFunc{query.Sum, query.Min, query.Max, query.Count}[trial%4]
			diffAgg(t, c1, cn, query.NewPathAggQuery(g, f))
		}

		// Deletions must mask the same global ids on both sides.
		for _, id := range []uint32{3, 17, 44, 101} {
			if _, err := c1.Delete(id); err != nil {
				t.Fatal(err)
			}
			if _, err := cn.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		diffMatch(t, c1, cn, query.FromPath(gpath.Closed("A0", "B0")))
	}
}

func TestDifferentialBatchesAndScanTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	records := randomRecords(t, rng, 80)
	c1, cn := buildPair(t, records, 8)

	var graphQs []*query.GraphQuery
	var aggQs []*query.PathAggQuery
	for trial := 0; trial < 24; trial++ {
		rec := records[rng.Intn(len(records))]
		elems := rec.Elements()
		g := graph.NewGraph()
		for i, m := 0, 1+rng.Intn(3); i < m; i++ {
			g.AddElement(elems[rng.Intn(len(elems))])
		}
		graphQs = append(graphQs, query.NewGraphQuery(g))
		aggQs = append(aggQs, query.NewPathAggQuery(g, query.Sum))
	}

	res1, errs1 := c1.ExecuteGraphBatchContext(context.Background(), graphQs, 4)
	resn, errsn := cn.ExecuteGraphBatchContext(context.Background(), graphQs, 4)
	for i := range graphQs {
		if (errs1[i] == nil) != (errsn[i] == nil) {
			t.Fatalf("batch %d: errors diverge: %v vs %v", i, errs1[i], errsn[i])
		}
		if errs1[i] != nil {
			continue
		}
		if !res1[i].Answer.Equals(resn[i].Answer) {
			t.Fatalf("batch %d: answers diverge", i)
		}
	}

	// MeasuresScanned totals: run the aggregation batch with clean counters
	// on both sides; the shard partition must scan each record's measures
	// exactly once, so the totals agree exactly.
	c1.ResetIOStats()
	cn.ResetIOStats()
	ares1, aerrs1 := c1.ExecutePathAggBatchContext(context.Background(), aggQs, 4)
	aresn, aerrsn := cn.ExecutePathAggBatchContext(context.Background(), aggQs, 4)
	for i := range aggQs {
		if (aerrs1[i] == nil) != (aerrsn[i] == nil) {
			t.Fatalf("agg batch %d: errors diverge: %v vs %v", i, aerrs1[i], aerrsn[i])
		}
		if aerrs1[i] != nil {
			continue
		}
		assertAggEqual(t, aggQs[i].String(), ares1[i], aresn[i])
	}
	s1, sn := c1.IOStats(), cn.IOStats()
	if s1.MeasuresScanned != sn.MeasuresScanned {
		t.Fatalf("MeasuresScanned diverges: 1-shard %d, 8-shard %d", s1.MeasuresScanned, sn.MeasuresScanned)
	}
	if s1.RecordsReturned != sn.RecordsReturned {
		t.Fatalf("RecordsReturned diverges: 1-shard %d, 8-shard %d", s1.RecordsReturned, sn.RecordsReturned)
	}
}
