package pagepool

import (
	"fmt"
	"sync"
	"testing"
)

func block(n int, fill float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = fill
	}
	return v
}

func TestGetMissThenHit(t *testing.T) {
	p := New(1 << 20)
	k := Key{Col: 1, Block: 0}
	if got := p.Get(k); got != nil {
		t.Fatalf("expected miss, got %v", got)
	}
	want := block(16, 3.5)
	p.Put(k, want)
	got := p.Get(k)
	if got == nil || &got[0] != &want[0] {
		t.Fatalf("expected the cached slice back")
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", s.Hits, s.Misses)
	}
}

func TestPutDuplicateKeepsFirst(t *testing.T) {
	p := New(1 << 20)
	k := Key{Col: 7, Block: 3}
	a := block(8, 1)
	b := block(8, 2)
	p.Put(k, a)
	got := p.Put(k, b)
	if &got[0] != &a[0] {
		t.Fatalf("duplicate Put must return the already-cached slice")
	}
	if s := p.Stats(); s.ResidentBlocks != 1 {
		t.Fatalf("resident blocks = %d, want 1", s.ResidentBlocks)
	}
}

func TestBudgetEviction(t *testing.T) {
	// Budget fits exactly two 128-value blocks (1024 bytes each).
	p := New(2048)
	for i := uint32(0); i < 10; i++ {
		p.Put(Key{Col: 1, Block: i}, block(128, float64(i)))
	}
	s := p.Stats()
	if s.ResidentBytes > 2048 {
		t.Fatalf("resident %d bytes over budget 2048", s.ResidentBytes)
	}
	if s.ResidentBlocks == 0 {
		t.Fatalf("pool must keep at least one block")
	}
	if s.Evictions != 8 {
		t.Fatalf("evictions = %d, want 8", s.Evictions)
	}
}

func TestClockSecondChance(t *testing.T) {
	// Three-block budget. Freshly inserted frames all carry reference bits,
	// so the very first sweep degenerates to FIFO — run one warm-up Put to
	// clear them, then keep re-referencing one hot block: the clock must
	// spare it on every later sweep while the cold blocks rotate out.
	p := New(3 * 128 * 8)
	hot := Key{Col: 1, Block: 1}
	p.Put(Key{Col: 1, Block: 0}, block(128, 0))
	p.Put(hot, block(128, 1))
	p.Put(Key{Col: 1, Block: 2}, block(128, 2))
	p.Put(Key{Col: 2, Block: 0}, block(128, 9)) // warm-up sweep
	if p.Get(hot) == nil {
		t.Fatalf("hot block lost in warm-up; it was not first in FIFO order")
	}
	for n := uint32(1); n < 5; n++ {
		p.Put(Key{Col: 2, Block: n}, block(128, 9))
		if p.Get(hot) == nil {
			t.Fatalf("hot block was evicted despite reference bit (round %d)", n)
		}
	}
}

func TestSetBudgetShrinks(t *testing.T) {
	p := New(0) // unbounded
	for i := uint32(0); i < 8; i++ {
		p.Put(Key{Col: 1, Block: i}, block(128, 0))
	}
	if s := p.Stats(); s.ResidentBlocks != 8 {
		t.Fatalf("unbounded pool evicted: %d blocks", s.ResidentBlocks)
	}
	p.SetBudget(2 * 128 * 8)
	if s := p.Stats(); s.ResidentBytes > 2*128*8 {
		t.Fatalf("SetBudget did not evict down: %d bytes", s.ResidentBytes)
	}
}

func TestInvalidateColumn(t *testing.T) {
	p := New(0)
	for i := uint32(0); i < 4; i++ {
		p.Put(Key{Col: 1, Block: i}, block(8, 0))
		p.Put(Key{Col: 2, Block: i}, block(8, 0))
	}
	p.InvalidateColumn(1)
	for i := uint32(0); i < 4; i++ {
		if p.Get(Key{Col: 1, Block: i}) != nil {
			t.Fatalf("col 1 block %d survived invalidation", i)
		}
		if p.Get(Key{Col: 2, Block: i}) == nil {
			t.Fatalf("col 2 block %d was wrongly dropped", i)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New(64 * 128 * 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Col: uint64(g % 3), Block: uint32(i % 200)}
				if v := p.Get(k); v == nil {
					p.Put(k, block(128, float64(i)))
				}
			}
		}(g)
	}
	wg.Wait()
	s := p.Stats()
	if s.ResidentBytes > 64*128*8 {
		t.Fatalf("over budget after concurrent load: %d", s.ResidentBytes)
	}
}

func TestEvictionNeverMutatesHandedOutBlocks(t *testing.T) {
	p := New(128 * 8) // single-block budget
	k0 := Key{Col: 1, Block: 0}
	held := p.Put(k0, block(128, 42))
	// Force k0 out.
	for i := uint32(1); i < 5; i++ {
		p.Put(Key{Col: 1, Block: i}, block(128, 0))
	}
	if p.Get(k0) != nil {
		t.Fatalf("k0 should be evicted under a one-block budget")
	}
	for i, v := range held {
		if v != 42 {
			t.Fatalf("held[%d] = %v after eviction; evicted blocks must stay intact", i, v)
		}
	}
}

func BenchmarkGetHit(b *testing.B) {
	p := New(1 << 24)
	keys := make([]Key, 64)
	for i := range keys {
		keys[i] = Key{Col: 1, Block: uint32(i)}
		p.Put(keys[i], block(4096, float64(i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Get(keys[i%len(keys)]) == nil {
			b.Fatal("unexpected miss")
		}
	}
}

func ExamplePool() {
	p := New(1 << 20)
	k := Key{Col: 1, Block: 0}
	if p.Get(k) == nil {
		p.Put(k, []float64{1, 2, 3})
	}
	fmt.Println(len(p.Get(k)))
	// Output: 3
}
