// Package pagepool implements the buffer pool that backs paged measure
// columns: a byte-budgeted cache of decoded value blocks with clock (second
// chance) eviction. The pool holds decoded []float64 blocks keyed by
// (column token, block index); colstore pages blocks in through it so the
// resident working set stays under a configurable budget regardless of how
// much data sits on disk.
//
// Safety model: eviction only drops the pool's reference to a block — the
// slice itself is never reused or cleared, so a reader that obtained a block
// just before eviction keeps a valid (immutable) snapshot and the garbage
// collector reclaims the memory once the last reader drops it. Blocks are
// written once by the loader before Put and never mutated afterwards.
package pagepool

import (
	"sync"
	"sync/atomic"
)

// Key identifies one decoded block: Col is a process-unique column token
// (columns from different snapshot generations get different tokens, so stale
// blocks can never be served after a reload) and Block is the block index
// within the column.
type Key struct {
	Col   uint64
	Block uint32
}

// frame is one cached block plus its clock reference bit.
type frame struct {
	key  Key
	vals []float64
	ref  bool
}

// Pool is a clock-eviction buffer pool over decoded measure blocks. The
// zero value is not usable; call New.
type Pool struct {
	mu       sync.Mutex
	budget   int64       // resident-byte budget; <=0 disables eviction (unbounded)
	resident int64       // bytes currently held (8 bytes per cached value)
	frames   map[Key]int // key -> index into ring
	ring     []frame
	hand     int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// New returns a pool with the given resident-byte budget. A budget <= 0
// means unbounded (nothing is ever evicted).
func New(budgetBytes int64) *Pool {
	return &Pool{budget: budgetBytes, frames: make(map[Key]int)}
}

// SetBudget changes the resident-byte budget and immediately evicts down to
// it if the pool is over.
func (p *Pool) SetBudget(budgetBytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.budget = budgetBytes
	p.evictLocked()
}

// Budget returns the current resident-byte budget.
func (p *Pool) Budget() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.budget
}

// Get returns the cached block for key, or nil on a miss. A hit sets the
// frame's reference bit, granting it a second chance on the clock sweep.
func (p *Pool) Get(key Key) []float64 {
	p.mu.Lock()
	if i, ok := p.frames[key]; ok {
		p.ring[i].ref = true
		vals := p.ring[i].vals
		p.mu.Unlock()
		p.hits.Add(1)
		return vals
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return nil
}

// Put inserts a freshly decoded block and evicts down to budget. If the key
// is already cached (two readers raced on the same miss) the existing block
// wins so all readers share one slice.
func (p *Pool) Put(key Key, vals []float64) []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i, ok := p.frames[key]; ok {
		p.ring[i].ref = true
		return p.ring[i].vals
	}
	p.frames[key] = len(p.ring)
	p.ring = append(p.ring, frame{key: key, vals: vals, ref: true})
	p.resident += 8 * int64(len(vals))
	p.evictLocked()
	return vals
}

// evictLocked runs the clock sweep until the pool fits its budget. At least
// one frame is always left resident so the block being inserted can be used.
// Termination: every sweep step either clears a ref bit or evicts a frame,
// and ref bits are only set outside the sweep, so the sweep clears at most
// len(ring) bits before it must evict.
func (p *Pool) evictLocked() {
	if p.budget <= 0 {
		return
	}
	for p.resident > p.budget && len(p.ring) > 1 {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		f := &p.ring[p.hand]
		if f.ref {
			f.ref = false
			p.hand++
			continue
		}
		p.evictAtLocked(p.hand)
	}
}

// evictAtLocked removes ring[i] by swapping the last frame into its slot.
func (p *Pool) evictAtLocked(i int) {
	f := p.ring[i]
	delete(p.frames, f.key)
	p.resident -= 8 * int64(len(f.vals))
	last := len(p.ring) - 1
	if i != last {
		p.ring[i] = p.ring[last]
		p.frames[p.ring[i].key] = i
	}
	p.ring[last] = frame{} // release the slice reference
	p.ring = p.ring[:last]
	if p.hand > last {
		p.hand = 0
	}
	p.evictions.Add(1)
}

// InvalidateColumn drops every cached block of the given column token. Used
// when a paged column is materialized for writes or its relation is reloaded.
func (p *Pool) InvalidateColumn(col uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < len(p.ring); {
		if p.ring[i].key.Col == col {
			p.evictAtLocked(i)
			continue // the swapped-in frame now sits at i
		}
		i++
	}
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Hits           int64
	Misses         int64
	Evictions      int64
	ResidentBlocks int
	ResidentBytes  int64
	BudgetBytes    int64
}

// Stats returns a consistent snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	blocks := len(p.ring)
	bytes := p.resident
	budget := p.budget
	p.mu.Unlock()
	return Stats{
		Hits:           p.hits.Load(),
		Misses:         p.misses.Load(),
		Evictions:      p.evictions.Load(),
		ResidentBlocks: blocks,
		ResidentBytes:  bytes,
		BudgetBytes:    budget,
	}
}
