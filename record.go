package grove

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"time"

	"grove/internal/bitmap"
	"grove/internal/fsio"
	"grove/internal/gpath"
	"grove/internal/obs"
	"grove/internal/query"
)

// Workload recording re-exports.
type (
	// WorkloadEvent is one line of a recorded workload log: a normalized,
	// replayable query description plus its observed outcome, or a per-view
	// usage snapshot.
	WorkloadEvent = obs.WorkloadEvent
	// RecordedPath is the normalized form of an explicit aggregation path.
	RecordedPath = obs.RecordedPath
)

// StartWorkloadRecording attaches a workload recorder writing one JSONL event
// per executed query to path (truncating an existing file). Recording is
// opt-in: with no recorder attached the query path pays one atomic load.
// Events capture a normalized, replayable form of each query — statement
// text, structural elements, aggregation parameters — together with its
// duration, error, and an FNV-1a digest of the answer, so a captured workload
// can be re-executed against any store configuration (ReplayWorkload,
// `grovebench -exp replay`) and verified to reproduce identical results.
func (s *Store) StartWorkloadRecording(path string) error {
	if s.rec.Load() != nil {
		return fmt.Errorf("grove: workload recording already active")
	}
	r, err := obs.NewWorkloadRecorder(fsio.OS(), path)
	if err != nil {
		return err
	}
	if !s.rec.CompareAndSwap(nil, r) {
		_ = r.Close() //grovevet:ignore droppederr racing starter keeps the installed recorder
		return fmt.Errorf("grove: workload recording already active")
	}
	return nil
}

// StopWorkloadRecording appends a final per-view usage snapshot, then flushes,
// fsyncs and closes the workload log. No-op when recording is not active.
// Buffered write errors from earlier Record calls resurface here.
func (s *Store) StopWorkloadRecording() error {
	r := s.rec.Swap(nil)
	if r == nil {
		return nil
	}
	verr := r.Record(obs.WorkloadEvent{Type: obs.EventViews, ViewUsage: s.ViewUsage()})
	cerr := r.Close()
	if verr != nil {
		return verr
	}
	return cerr
}

// RecordingActive reports whether a workload recorder is attached.
func (s *Store) RecordingActive() bool { return s.rec.Load() != nil }

// SnapshotViewUsage appends a per-view usage snapshot event to the active
// workload log — the feed a workload-driven view advisor trains on. No-op
// when recording is not active.
func (s *Store) SnapshotViewUsage() error {
	r := s.rec.Load()
	if r == nil {
		return nil
	}
	return r.Record(obs.WorkloadEvent{Type: obs.EventViews, ViewUsage: s.ViewUsage()})
}

// ReadWorkloadLog parses a workload log written by StartWorkloadRecording, in
// recorded order.
func ReadWorkloadLog(path string) ([]WorkloadEvent, error) {
	return obs.ReadWorkload(fsio.OS(), path)
}

// --- event construction ------------------------------------------------------

// edgesOf normalizes a query graph to its element list ([x,x] = node).
func edgesOf(g *Graph) [][2]string {
	elems := g.Elements()
	out := make([][2]string, len(elems))
	for i, e := range elems {
		out[i] = [2]string{e.From, e.To}
	}
	return out
}

func recordedPaths(paths []gpath.Path) []RecordedPath {
	if len(paths) == 0 {
		return nil
	}
	out := make([]RecordedPath, len(paths))
	for i, p := range paths {
		out[i] = RecordedPath{Nodes: p.Nodes, OpenStart: p.OpenStart, OpenEnd: p.OpenEnd}
	}
	return out
}

// record finalizes and appends one query event. Write errors stay in the
// buffered writer and resurface at StopWorkloadRecording.
func (s *Store) record(r *obs.WorkloadRecorder, ev obs.WorkloadEvent, start time.Time, err error) {
	ev.Type = obs.EventQuery
	ev.DurationNanos = time.Since(start).Nanoseconds()
	if err != nil {
		ev.Error = err.Error()
		ev.Digest = ""
	}
	_ = r.Record(ev) //grovevet:ignore droppederr buffered write errors resurface at StopWorkloadRecording
}

func (s *Store) recordMatch(r *obs.WorkloadRecorder, q *query.GraphQuery, start time.Time, res *Result, err error) {
	ev := obs.WorkloadEvent{Kind: obs.KindGraph, Text: q.String(), Edges: edgesOf(q.G)}
	if err == nil {
		ev.Digest = digestBitmap(res.Answer)
	}
	s.record(r, ev, start, err)
}

func (s *Store) recordAgg(r *obs.WorkloadRecorder, q *query.PathAggQuery, start time.Time, res *AggResult, err error) {
	ev := obs.WorkloadEvent{Kind: obs.KindPathAgg, Text: q.String(), Edges: edgesOf(q.G),
		Agg: q.Agg.Name, Measure: q.Measure, Paths: recordedPaths(q.Paths)}
	if err == nil {
		ev.Digest = digestAgg(res)
	}
	s.record(r, ev, start, err)
}

func (s *Store) recordEval(r *obs.WorkloadRecorder, e Expr, start time.Time, ids *Bitmap, err error) {
	// Expressions are recorded for completeness (text, timing, digest) but are
	// not replayable: the rendered form is not part of the text grammar.
	ev := obs.WorkloadEvent{Kind: obs.KindExpr, Text: e.String()}
	if err == nil {
		ev.Digest = digestBitmap(ids)
	}
	s.record(r, ev, start, err)
}

func (s *Store) recordStatement(r *obs.WorkloadRecorder, text string, start time.Time, res *QueryResult, err error) {
	ev := obs.WorkloadEvent{Kind: obs.KindStatement, Text: text, Statement: true}
	if err == nil {
		if res.Agg != nil {
			ev.Digest = digestAgg(res.Agg)
		} else {
			ev.Digest = digestBitmap(res.IDs)
		}
	}
	s.record(r, ev, start, err)
}

// recordGraphBatch appends one graph event per batch slot (the batch is a
// scheduling construct; the workload's replayable unit is the query).
func (s *Store) recordGraphBatch(r *obs.WorkloadRecorder, queries []*query.GraphQuery, start time.Time, results []*Result, errs []error) {
	for i, q := range queries {
		s.recordMatch(r, q, start, results[i], errs[i])
	}
}

func (s *Store) recordAggBatch(r *obs.WorkloadRecorder, queries []*query.PathAggQuery, start time.Time, results []*AggResult, errs []error) {
	for i, q := range queries {
		s.recordAgg(r, q, start, results[i], errs[i])
	}
}

// --- digests -----------------------------------------------------------------

// digestBitmap returns the hex FNV-1a digest of a record-id set, in ascending
// id order. Identical answers — and only identical answers, up to hash
// collision — digest identically regardless of shard count.
func digestBitmap(b *bitmap.Bitmap) string {
	h := fnv.New64a()
	if b != nil {
		var buf [4]byte
		b.Each(func(v uint32) bool {
			binary.LittleEndian.PutUint32(buf[:], v)
			_, _ = h.Write(buf[:]) //grovevet:ignore droppederr fnv.Write cannot fail
			return true
		})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// digestAgg digests a path-aggregation answer: the matched record ids plus
// every per-path aggregate value's exact float64 bits (so NaN payloads and
// signed zeros participate — merges must be bit-identical, not just ≈).
func digestAgg(a *AggResult) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, id := range a.RecordIDs {
		binary.LittleEndian.PutUint32(buf[:4], id)
		_, _ = h.Write(buf[:4]) //grovevet:ignore droppederr fnv.Write cannot fail
	}
	for _, vals := range a.Values {
		for _, v := range vals {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			_, _ = h.Write(buf[:]) //grovevet:ignore droppederr fnv.Write cannot fail
		}
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// --- replay ------------------------------------------------------------------

// ErrNotReplayable marks workload events that carry no replayable query form
// (boolean-expression events recorded from the programmatic API, and non-query
// events such as view-usage snapshots).
var ErrNotReplayable = errors.New("grove: workload event is not replayable")

// ReplayEvent re-executes one recorded query event against the store and
// returns the digest of the fresh answer (compare with ev.Digest to verify
// the replay reproduced the recorded result).
func (s *Store) ReplayEvent(ev WorkloadEvent) (string, error) {
	if ev.Type != obs.EventQuery {
		return "", ErrNotReplayable
	}
	if ev.Statement {
		res, err := s.Query(ev.Text)
		if err != nil {
			return "", err
		}
		if res.Agg != nil {
			return digestAgg(res.Agg), nil
		}
		return digestBitmap(res.IDs), nil
	}
	switch ev.Kind {
	case obs.KindGraph:
		res, err := s.Match(graphFromEdges(ev.Edges))
		if err != nil {
			return "", err
		}
		return digestBitmap(res.Answer), nil
	case obs.KindPathAgg:
		f, ok := query.ByName(ev.Agg)
		if !ok {
			return "", fmt.Errorf("grove: replay: unknown aggregate %q", ev.Agg)
		}
		q := query.NewPathAggQueryOn(graphFromEdges(ev.Edges), f, ev.Measure)
		for _, p := range ev.Paths {
			q.Paths = append(q.Paths, gpath.Path{Nodes: p.Nodes, OpenStart: p.OpenStart, OpenEnd: p.OpenEnd})
		}
		res, err := s.aggregateQuery(context.Background(), q)
		if err != nil {
			return "", err
		}
		return digestAgg(res), nil
	default:
		return "", ErrNotReplayable
	}
}

func graphFromEdges(edges [][2]string) *Graph {
	g := NewGraph()
	for _, e := range edges {
		g.AddElement(EdgeKey{From: e[0], To: e[1]})
	}
	return g
}

// ReplayStats summarizes a workload replay.
type ReplayStats struct {
	Queries    int // query events seen
	Replayed   int // re-executed successfully
	Skipped    int // not replayable (expressions, snapshots) or recorded as failed
	Verified   int // replayed with a recorded digest that matched
	Mismatched int // replayed with a recorded digest that did NOT match
}

// ReplayWorkload re-executes a recorded workload in order, verifying each
// replayed answer's digest against the recorded one. Events recorded as
// failed and non-replayable events are skipped. Execution errors abort the
// replay; digest mismatches don't — inspect Mismatched.
func (s *Store) ReplayWorkload(events []WorkloadEvent) (ReplayStats, error) {
	var st ReplayStats
	for i, ev := range events {
		if ev.Type != obs.EventQuery {
			continue
		}
		st.Queries++
		if ev.Error != "" {
			st.Skipped++
			continue
		}
		digest, err := s.ReplayEvent(ev)
		if errors.Is(err, ErrNotReplayable) {
			st.Skipped++
			continue
		}
		if err != nil {
			return st, fmt.Errorf("grove: replay event %d (seq %d): %w", i, ev.Seq, err)
		}
		st.Replayed++
		if ev.Digest == "" {
			continue
		}
		if digest == ev.Digest {
			st.Verified++
		} else {
			st.Mismatched++
		}
	}
	return st, nil
}
