package grove

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestShardedTraceTree asserts the shape of a scatter-gathered query's
// hierarchical trace: one root per logical query, labelled with the
// coordinator pseudo-shard, with coordinator phase spans in protocol order
// (fan-out, one queue-wait per shard, merge) and one engine child per shard.
func TestShardedTraceTree(t *testing.T) {
	st := NewSharded(4)
	loadSCMOrders(t, st)
	st.EnableTracing(8)

	if _, err := st.MatchPath("A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	traces := st.RecentTraces()
	if len(traces) != 1 {
		t.Fatalf("one scattered query recorded %d traces, want 1 root (children must not land in the ring)", len(traces))
	}
	root := traces[0]
	if root.Kind != "graph" || root.Shard != -1 {
		t.Fatalf("root = kind %q shard %d, want graph/-1", root.Kind, root.Shard)
	}
	if root.Query == "" {
		t.Error("root trace lost the query text")
	}

	// Span protocol: fan-out, queue-wait ×4 (labelled 0..3), merge.
	if len(root.Spans) != 6 {
		t.Fatalf("root spans = %+v, want fan-out + 4 queue-waits + merge", root.Spans)
	}
	if root.Spans[0].Phase != "fan-out" || root.Spans[0].Shard != -1 {
		t.Errorf("span 0 = %+v, want coordinator fan-out", root.Spans[0])
	}
	for i := 0; i < 4; i++ {
		s := root.Spans[1+i]
		if s.Phase != "queue-wait" || s.Shard != i {
			t.Errorf("span %d = %+v, want queue-wait on shard %d", 1+i, s, i)
		}
	}
	last := root.Spans[len(root.Spans)-1]
	if last.Phase != "merge" || last.Shard != -1 {
		t.Errorf("last span = %+v, want coordinator merge", last)
	}

	if len(root.Children) != 4 {
		t.Fatalf("children = %d, want one per shard", len(root.Children))
	}
	var childIO int64
	for i, c := range root.Children {
		if c.Shard != i || c.Kind != "graph" {
			t.Errorf("child %d = kind %q shard %d", i, c.Kind, c.Shard)
		}
		if len(c.Spans) == 0 || c.Spans[0].Phase != "plan" {
			t.Errorf("child %d spans = %+v, want engine lifecycle starting at plan", i, c.Spans)
		}
		for _, s := range c.Spans {
			if s.Shard != i {
				t.Errorf("child %d span %q labelled shard %d", i, s.Phase, s.Shard)
			}
		}
		childIO += c.IO.BitmapColumnsFetched
	}
	if root.IO.BitmapColumnsFetched != childIO {
		t.Errorf("root bitmap fetches = %d, children sum to %d", root.IO.BitmapColumnsFetched, childIO)
	}

	// A sharded statement is parsed once by the coordinator: the root carries
	// the statement kind and text but no parse span.
	if _, err := st.Query("[A,D] AND NOT [C,H]"); err != nil {
		t.Fatal(err)
	}
	stmt := st.RecentTraces()[0]
	if stmt.Kind != "statement" || stmt.Query != "[A,D] AND NOT [C,H]" {
		t.Fatalf("statement root = kind %q query %q", stmt.Kind, stmt.Query)
	}
	for _, s := range stmt.Spans {
		if s.Phase == "parse" {
			t.Errorf("sharded statement root has a parse span: %+v", stmt.Spans)
		}
	}
	if len(stmt.Children) != 4 {
		t.Errorf("statement children = %d", len(stmt.Children))
	}

	st.DisableTracing()
	if st.RecentTraces() != nil {
		t.Error("traces survive disabling")
	}
}

// TestShardedExplainAnalyzeSumEqualsParts is the sharded EXPLAIN ANALYZE
// acceptance criterion: the analysis carries one child per shard, the root's
// observed I/O is exactly the sum over the children, each child's fetch count
// matches the plan, and the answer is bit-identical to the single-shard one.
func TestShardedExplainAnalyzeSumEqualsParts(t *testing.T) {
	one, four := Open(), NewSharded(4)
	loadSCMOrders(t, one)
	loadSCMOrders(t, four)

	g := PathOf("A", "D", "E").ToGraph()
	a1, err := one.ExplainAnalyze(g)
	if err != nil {
		t.Fatal(err)
	}
	a4, err := four.ExplainAnalyze(g)
	if err != nil {
		t.Fatal(err)
	}

	if a4.Plan.BitmapsFetched != a1.Plan.BitmapsFetched {
		t.Errorf("plans disagree: %d vs %d bitmaps", a4.Plan.BitmapsFetched, a1.Plan.BitmapsFetched)
	}
	if a4.Records != a1.Records {
		t.Errorf("records = %d, single-shard %d", a4.Records, a1.Records)
	}
	if a4.Answer == nil || !a4.Answer.Equals(a1.Answer) {
		t.Fatalf("sharded answer %v differs from single-shard %v", a4.Answer, a1.Answer)
	}
	// The analysis answer must be the same record set a plain Match returns.
	res, err := four.Match(g)
	if err != nil {
		t.Fatal(err)
	}
	if !a4.Answer.Equals(res.Answer) {
		t.Error("ExplainAnalyze answer differs from Match on the same store")
	}

	root := a4.Trace
	if root.Shard != -1 || len(root.Children) != 4 {
		t.Fatalf("root = shard %d with %d children", root.Shard, len(root.Children))
	}
	var sum IODelta
	for i, c := range root.Children {
		if c.Shard != i {
			t.Errorf("child %d labelled shard %d", i, c.Shard)
		}
		// Every shard executes the full plan against its own columns.
		if c.IO.BitmapColumnsFetched != int64(a4.Plan.BitmapsFetched) {
			t.Errorf("child %d fetched %d bitmaps, plan predicts %d", i, c.IO.BitmapColumnsFetched, a4.Plan.BitmapsFetched)
		}
		sum = sum.Add(c.IO)
	}
	if root.IO != sum {
		t.Errorf("root IO %+v != sum of children %+v", root.IO, sum)
	}
	if !strings.Contains(a4.String(), "shard 0") {
		t.Errorf("rendering missing per-shard breakdown:\n%s", a4.String())
	}
}

// TestSlowQueryLogThroughStore covers the slow-query ring end to end: a
// threshold-0 log records every query with its per-shard breakdown, the
// threshold can be retuned live, and /debug/slow serves the entries as JSONL.
func TestSlowQueryLogThroughStore(t *testing.T) {
	st := NewSharded(4)
	loadSCMOrders(t, st)
	st.EnableSlowQueryLog(8, 0)

	if _, err := st.MatchPath("A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AggregatePath(Sum, "A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query("[A,D,E] AND NOT [A,B]"); err != nil {
		t.Fatal(err)
	}

	slow := st.SlowQueries()
	if len(slow) != 3 {
		t.Fatalf("slow entries = %d, want 3 (one merged entry per logical query, not one per shard)", len(slow))
	}
	// Newest first.
	for i, want := range []string{"statement", "pathagg", "graph"} {
		e := slow[i]
		if e.Kind != want {
			t.Errorf("entry %d kind = %q, want %q", i, e.Kind, want)
		}
		if e.Shard != -1 {
			t.Errorf("entry %d shard = %d, want coordinator", i, e.Shard)
		}
		if e.Query == "" {
			t.Errorf("entry %d lost its query text", i)
		}
		if len(e.Shards) != 4 {
			t.Errorf("entry %d carries %d shard timings, want 4", i, len(e.Shards))
		}
		for s, timing := range e.Shards {
			if timing.Shard != s {
				t.Errorf("entry %d timing %d labelled shard %d", i, s, timing.Shard)
			}
		}
	}

	// Retuning the threshold stops logging without dropping entries.
	st.SetSlowQueryThreshold(time.Hour)
	if _, err := st.MatchPath("A", "D"); err != nil {
		t.Fatal(err)
	}
	if got := len(st.SlowQueries()); got != 3 {
		t.Errorf("entries after retune = %d, want 3", got)
	}

	// The total counter keeps counting evicted entries too.
	st.Metrics()
	srv, err := st.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	var lines int
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		var e SlowQuery
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("unparseable /debug/slow line %q: %v", sc.Text(), err)
		}
		if e.Kind == "" {
			t.Errorf("entry missing kind: %q", sc.Text())
		}
		lines++
	}
	if lines != 3 {
		t.Errorf("/debug/slow served %d entries, want 3", lines)
	}

	mresp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		MetricSlowQueries + " 3",
		MetricScatterMerge + "_count",
		MetricShardQueueWait + `_count{shard="0"}`,
		MetricShardQueueWait + `_count{shard="3"}`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	st.DisableSlowQueryLog()
	if st.SlowQueries() != nil {
		t.Error("entries survive disabling")
	}
}

// TestSlowQueryLogSingleShard pins the engine-level (unscattered) shape: flat
// entries labelled with shard 0 and no per-shard breakdown.
func TestSlowQueryLogSingleShard(t *testing.T) {
	st := Open()
	loadSCMOrders(t, st)
	st.EnableSlowQueryLog(4, 0)
	if _, err := st.MatchPath("A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	slow := st.SlowQueries()
	if len(slow) != 1 {
		t.Fatalf("entries = %d", len(slow))
	}
	if slow[0].Shard != 0 || slow[0].Shards != nil {
		t.Errorf("single-shard entry = %+v, want shard 0 with no breakdown", slow[0])
	}
	if slow[0].Kind != "graph" {
		t.Errorf("kind = %q", slow[0].Kind)
	}
}

// TestShardedDisabledObservabilityAddsNoAllocations is the acceptance guard
// for the disabled path on a sharded store: after tracing and the slow log
// are switched off, a scattered query must allocate exactly what a
// never-instrumented store allocates.
func TestShardedDisabledObservabilityAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops a random 1/4 of Puts under the race detector, so allocation counts are nondeterministic")
	}
	base := NewSharded(4)
	loadSCMOrders(t, base)
	inst := NewSharded(4)
	loadSCMOrders(t, inst)
	inst.EnableTracing(4)
	inst.EnableSlowQueryLog(4, 0)
	g := PathOf("A", "D", "E").ToGraph()
	if _, err := inst.Match(g); err != nil {
		t.Fatal(err)
	}
	inst.DisableTracing()
	inst.DisableSlowQueryLog()

	// Warm both stores so goroutine stacks and scratch pools are paid up front.
	for _, st := range []*Store{base, inst} {
		for i := 0; i < 5; i++ {
			if _, err := st.Match(g); err != nil {
				t.Fatal(err)
			}
		}
	}
	baseline := testing.AllocsPerRun(100, func() {
		if _, err := base.Match(g); err != nil {
			t.Fatal(err)
		}
	})
	disabled := testing.AllocsPerRun(100, func() {
		if _, err := inst.Match(g); err != nil {
			t.Fatal(err)
		}
	})
	if disabled > baseline {
		t.Errorf("disabled observability allocates: %.1f/op vs %.1f/op never-instrumented", disabled, baseline)
	}
}
