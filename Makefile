GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector gate for the concurrent read path: vet everything, then run
# the packages that share state across goroutines (engine scratch pool,
# sharded result cache, relation RWMutex, registry) plus the root facade.
race:
	$(GO) vet ./...
	$(GO) test -race . ./internal/query/... ./internal/bitmap/... ./internal/colstore/...

bench:
	$(GO) test -run xxx -bench . ./...
