GO ?= go

.PHONY: build test race lint fuzz-smoke bench bench-smoke replay-smoke durability shard-diff paged-diff wal-diff check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Project-specific static analysis (internal/lint via cmd/grovevet). Two
# tiers: per-function syntax/type checks (the colstore lock protocol, dropped
# errors, fsio-mediated persistence I/O, metric naming, the stdlib-only
# dependency policy, sync/atomic hygiene) and interprocedural dataflow over a
# module-wide call graph (context threading, goroutine join/recovery, lock
# ordering and blocking-under-lock, compiler-verified allocation-free
# //grove:hotpath functions). Exits non-zero on findings; -deadline doubles
# as the lint-runtime smoke — the whole suite, including the hotalloc
# `go build -gcflags=-m` pass, must finish inside 30s or the gate fails.
lint:
	$(GO) run ./cmd/grovevet -deadline 30s

# Race-detector gate for the concurrent read path: vet everything, then run
# the packages that share state across goroutines (engine scratch pool,
# sharded result cache, relation RWMutex, registry, metrics endpoint, view
# advisor, graphdb facade, fault-injection FS, scatter-gather coordinator)
# plus the root facade.
race:
	$(GO) vet ./...
	$(GO) test -race . ./internal/query/... ./internal/bitmap/... \
		./internal/colstore/... ./internal/obs/... ./internal/view/... \
		./internal/graphdb/... ./internal/fsio/... ./internal/shard/... \
		./internal/wal/...

# Short fuzz pass over every decoder that consumes untrusted bytes: the
# bitmap wire format, the query parser, the colstore on-disk format, the
# CURRENT generation pointer, and the write-ahead log (op payloads and whole
# log files fed to the replay scanner).
fuzz-smoke:
	$(GO) test ./internal/bitmap/ -fuzz FuzzReadFrom -fuzztime 3s
	$(GO) test ./internal/query/ -fuzz FuzzParse -fuzztime 3s
	$(GO) test ./internal/colstore/ -fuzz FuzzMeasureColumnRoundTrip -fuzztime 3s
	$(GO) test ./internal/colstore/ -fuzz FuzzReadMeasureColumn -fuzztime 3s
	$(GO) test ./internal/colstore/ -fuzz FuzzLoadCorrupt -fuzztime 3s
	$(GO) test ./internal/colstore/ -fuzz FuzzDecodeBlock -fuzztime 3s
	$(GO) test ./internal/colstore/ -fuzz FuzzBlockIndex -fuzztime 3s
	$(GO) test ./internal/colstore/ -fuzz FuzzCurrentPointer -fuzztime 3s
	$(GO) test ./internal/wal/ -fuzz FuzzWALRecord -fuzztime 3s
	$(GO) test ./internal/wal/ -fuzz FuzzWALReplay -fuzztime 3s

bench:
	$(GO) test -run xxx -bench . ./...

# One-iteration pass over the path-aggregation benchmarks: proves the
# vectorized measure path still builds, runs, and stays allocation-bounded
# without paying for a full benchmark run. The checked-in baseline is
# BENCH_pathagg.json (regenerate with
# `go test ./internal/query/ -run '^$$' -bench PathAgg -benchtime 5x`).
# The obs-overhead guard holds metrics+tracing near the <5% EXPERIMENTS.md
# expectation (10% tripwire budget: noise headroom on a contended box).
bench-smoke:
	$(GO) test ./internal/query/ -run '^$$' -bench PathAgg -benchtime 1x
	$(GO) test ./internal/shard/ -run '^$$' -bench Sharded -benchtime 1x
	$(GO) test ./internal/bench/ -run TestObsOverheadSmoke -count=1 -v

# The workload record→replay round trip at smoke scale: capture a mixed
# workload on a single-shard store and replay it against 1/2/4-shard stores,
# requiring every replayed answer's digest to match the recording
# (grovebench exits non-zero on any mismatch).
replay-smoke:
	$(GO) run ./cmd/grovebench -exp replay -ny 2000 -q 20

# The durability gate: crash Save at every injected I/O fault (with and
# without torn writes) and prove Load always recovers a complete snapshot —
# single-relation and sharded-manifest protocols both — then exercise
# recovery, GC, rollback and cancellation paths.
durability:
	$(GO) test ./internal/colstore/ -run \
		'TestSaveFaultSweep|TestLoadFallbackRecovery|TestSnapshotGCKeepCount|TestGenerationsInventoryAndRollback|TestConcurrentSaveLoadMutate' -v
	$(GO) test ./internal/shard/ -run \
		'TestShardedSaveFaultSweep|TestShardedRepeatedCrashedSavesKeepRollbackCut|TestShardedSaveLoadRoundTrip' -v
	$(GO) test ./internal/query/ -run 'Cancel|Batch' -v
	$(GO) test . -run 'TestStoreContextCancelled|TestStoreExecuteBatchContextCancelled|TestStoreBatchPanicIsolated' -v

# The sharding differential gate: the same workloads through 1-shard and
# N-shard stores must produce bit-identical answers (bitmaps, aggregate
# values including NaN/signed-zero, scan totals), at the coordinator and at
# the public API.
shard-diff:
	$(GO) test ./internal/shard/ -run 'TestDifferential' -v
	$(GO) test . -run 'TestShardedPublicDifferential' -v

# The paged-storage differential gate: a saved-and-reloaded paged store must
# return bit-identical answers to the in-memory store it was saved from —
# signed zeros, ±MaxFloat64, denormals, deletions, all four block encodings,
# single-shard and sharded, at pool budgets down to 1% — with the zone-skip
# scalar plan engaged, the multi-block crash sweep green, and the hot
# block-decode/zone-skip kernels allocation-free.
paged-diff:
	$(GO) test . -run 'TestPagedBitIdentical|TestPagedZoneSkipEngages|TestPagedShardedBitIdentical' -v
	$(GO) test ./internal/colstore/ -run \
		'TestSaveFaultSweepMultiBlock|TestDecodeBlockAllocs|TestAggregateSkipAllocs' -v

# The write-ahead-log gate: crash WAL-logged ingest and checkpoints at every
# injected I/O fault (plain and torn-write modes) and prove recovery always
# lands on a clean prefix of the op sequence — every fsync-acknowledged op
# present, no partial op applied, sharded recovery bit-identical to
# single-shard, views maintained incrementally matching a from-scratch
# rebuild — plus the frame/scan unit suite and the snapshot-GC crash sweep
# the checkpoint's truncation ordering leans on.
wal-diff:
	$(GO) test . -run \
		'TestWALFaultSweep|TestShardedWALFaultSweep|TestWALCheckpointFaultSweep|TestIncrementalViewDifferential|TestOpenDurableLifecycle|TestShardedLoadManifestFallbacks|TestWALGenMismatchSkipped' -v
	$(GO) test ./internal/wal/ -count=1
	$(GO) test ./internal/colstore/ -run 'TestSaveFaultSweepSnapshotGC' -v

# The full gate CI runs: vet, lint, build, tests, the durability sweep, then
# the race-detector pass (which re-vets; harmless and keeps `make race`
# self-contained).
check:
	$(GO) vet ./...
	$(MAKE) lint
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) bench-smoke
	$(MAKE) replay-smoke
	$(MAKE) durability
	$(MAKE) shard-diff
	$(MAKE) paged-diff
	$(MAKE) wal-diff
	$(MAKE) race
