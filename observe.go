package grove

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"grove/internal/colstore"
	"grove/internal/obs"
	"grove/internal/query"
)

// Observability re-exports. The obs package is stdlib-only; these aliases
// keep the public API a single import.
type (
	// MetricsRegistry holds named counters, gauges and latency histograms and
	// renders them in Prometheus text format (version 0.0.4).
	MetricsRegistry = obs.Registry
	// MetricsServer is the HTTP server started by ServeMetrics.
	MetricsServer = obs.Server
	// Trace is the recorded lifecycle of one query: per-phase spans with wall
	// time and column-store I/O deltas.
	Trace = obs.Trace
	// TraceSpan is one timed phase of a trace.
	TraceSpan = obs.Span
	// IODelta is the column-store I/O attributed to a trace, span, or
	// slow-query entry.
	IODelta = obs.IODelta
	// CacheStats is the result cache's cumulative hit/miss/eviction counts.
	CacheStats = query.CacheStats
	// ExplainAnalysis pairs a query's predicted plan with the observed
	// per-phase timings and I/O of one real execution.
	ExplainAnalysis = query.ExplainAnalysis
	// SlowQuery is one structured slow-query log entry (JSONL shape served by
	// /debug/slow and `grovecli slow`).
	SlowQuery = obs.SlowQuery
	// ShardTiming is one shard's queue-wait/execution breakdown inside a
	// scatter-gathered SlowQuery.
	ShardTiming = obs.ShardTiming
)

// Store-level metric families (engine families live in internal/obs).
const (
	MetricIOBitmapFetches   = "grove_io_bitmap_fetches_total"
	MetricIOMeasureFetches  = "grove_io_measure_fetches_total"
	MetricIOMeasuresScanned = "grove_io_measures_scanned_total"
	MetricIOBytesRead       = "grove_io_bytes_read_total"
	MetricIOPartitionJoins  = "grove_io_partition_joins_total"
	MetricIORecordsReturned = "grove_io_records_returned_total"

	MetricCacheHits      = "grove_cache_hits_total"
	MetricCacheMisses    = "grove_cache_misses_total"
	MetricCacheEvictions = "grove_cache_evictions_total"

	MetricViewUses = "grove_view_uses_total"

	MetricPersistRecoveries = "grove_persist_recoveries_total"

	MetricStoreRecords        = "grove_store_records"
	MetricStoreDeleted        = "grove_store_deleted_records"
	MetricStoreEdges          = "grove_store_distinct_edges"
	MetricStoreSizeBytes      = "grove_store_size_bytes"
	MetricStoreGraphViews     = "grove_store_graph_views"
	MetricStoreAggViews       = "grove_store_aggregate_views"
	MetricStorePartitions     = "grove_store_partitions"
	MetricTracesRecordedTotal = "grove_traces_recorded_total"

	// Per-shard families, labelled {shard="0"}, {shard="1"}, … (DESIGN.md §12).
	MetricStoreShards     = "grove_store_shards"
	MetricShardRecords    = "grove_shard_records"
	MetricShardQueueDepth = "grove_shard_queue_depth"
	MetricShardCacheHits  = "grove_shard_cache_hits_total"
	MetricShardSizeBytes  = "grove_shard_size_bytes"

	// Scatter-gather phase latencies (DESIGN.md §8): per-shard dispatch →
	// execution-start wait, and the coordinator's merge phase.
	MetricShardQueueWait = "grove_shard_queue_wait_seconds"
	MetricScatterMerge   = "grove_scatter_merge_seconds"

	MetricSlowQueries = "grove_slow_queries_total"

	// Paged storage & buffer pool (DESIGN.md §13). Pool counters sum across
	// the per-shard pools; storage gauges sum across shards.
	MetricPagePoolHits          = "grove_pagepool_hits_total"
	MetricPagePoolMisses        = "grove_pagepool_misses_total"
	MetricPagePoolEvictions     = "grove_pagepool_evictions_total"
	MetricPagePoolResidentBytes = "grove_pagepool_resident_bytes"
	MetricPagePoolBudgetBytes   = "grove_pagepool_budget_bytes"
	MetricBlocksSkipped         = "grove_scan_blocks_skipped_total"
	MetricStorageLogicalBytes   = "grove_storage_logical_bytes"
	MetricStorageOnDiskBytes    = "grove_storage_ondisk_bytes"
	MetricStorageResidentBytes  = "grove_storage_resident_bytes"
	MetricStorageBlocks         = "grove_storage_blocks"

	// Write-ahead log (DESIGN.md §14). Counters sum across the per-shard
	// logs; the LSN gauge is per shard.
	MetricWALAppends       = "grove_wal_appends_total"
	MetricWALAppendedBytes = "grove_wal_appended_bytes_total"
	MetricWALFsyncs        = "grove_wal_fsyncs_total"
	MetricWALReplayedOps   = "grove_wal_replayed_ops_total"
	MetricWALTruncations   = "grove_wal_truncations_total"
	MetricWALSkippedLogs   = "grove_wal_skipped_logs_total"
	MetricWALNextLSN       = "grove_wal_next_lsn"
)

// ioSink mirrors the column store's accounting events into registry
// counters. Unlike IOStatsSnapshot, these are monotonic: ResetIOStats zeroes
// the experiment counters but never rewinds the exported metrics.
type ioSink struct {
	bitmapFetches   *obs.Counter
	measureFetches  *obs.Counter
	measuresScanned *obs.Counter
	bytesRead       *obs.Counter
	partitionJoins  *obs.Counter
	recordsReturned *obs.Counter
}

func (k *ioSink) OnBitmapFetch(bytes int64) {
	k.bitmapFetches.Inc()
	k.bytesRead.Add(bytes)
}

func (k *ioSink) OnMeasureFetch(bytes int64) {
	k.measureFetches.Inc()
	k.bytesRead.Add(bytes)
}

func (k *ioSink) OnMeasuresScanned(n int64) { k.measuresScanned.Add(n) }
func (k *ioSink) OnPartitionJoins(n int64)  { k.partitionJoins.Add(n) }
func (k *ioSink) OnRecordsReturned(n int64) { k.recordsReturned.Add(n) }

// Metrics returns the store's metrics registry, creating and wiring it on
// first call: engine query counters and latency histograms, the column
// store's I/O tap, cache and view-usage readers, and store-size gauges.
// Recording is allocation-free; a store that never calls Metrics pays
// nothing. Like EnableResultCache, first call it before serving queries.
func (s *Store) Metrics() *MetricsRegistry {
	if s.metrics != nil {
		return s.metrics
	}
	r := obs.NewRegistry()
	s.metrics = r
	// One shared metrics bundle serves every shard engine: the counters are
	// atomic, so scatter-gathered sub-queries record into them concurrently.
	s.coord.SetMetrics(obs.NewQueryMetrics(r))

	// Likewise one shared I/O sink taps every shard's column-store tracker.
	sink := &ioSink{
		bitmapFetches:   r.Counter(MetricIOBitmapFetches, "Bitmap columns fetched (the paper's structural cost unit)."),
		measureFetches:  r.Counter(MetricIOMeasureFetches, "Measure columns fetched."),
		measuresScanned: r.Counter(MetricIOMeasuresScanned, "Individual measure values materialized."),
		bytesRead:       r.Counter(MetricIOBytesRead, "Physical payload bytes touched."),
		partitionJoins:  r.Counter(MetricIOPartitionJoins, "Record-id joins across vertical partitions."),
		recordsReturned: r.Counter(MetricIORecordsReturned, "Graph records in query answers."),
	}
	for i := 0; i < s.coord.NumShards(); i++ {
		s.coord.Unit(i).Rel.Tracker().SetSink(sink)
	}

	r.CounterFunc(MetricCacheHits, "Result cache hits.",
		func() float64 { return float64(s.CacheStats().Hits) })
	r.CounterFunc(MetricCacheMisses, "Result cache misses.",
		func() float64 { return float64(s.CacheStats().Misses) })
	r.CounterFunc(MetricCacheEvictions, "Result cache LRU evictions.",
		func() float64 { return float64(s.CacheStats().Evictions) })

	r.CounterFunc(MetricPersistRecoveries, "Loads that fell back to an older snapshot generation because the installed one was missing or damaged (process-wide).",
		func() float64 { return float64(colstore.PersistRecoveries()) })

	r.CounterVecFunc(MetricViewUses, "Times each materialized view answered part of a query.",
		func() map[string]float64 {
			usage := s.ViewUsage()
			out := make(map[string]float64, len(usage))
			for name, n := range usage {
				out[obs.Labels("view", name)] = float64(n)
			}
			return out
		})

	// Store gauges aggregate across every shard — a sharded store reporting
	// only shard 0 would understate the store by a factor of N.
	r.GaugeFunc(MetricStoreRecords, "Stored graph records (all shards).",
		func() float64 { return float64(s.coord.NumRecords()) })
	r.GaugeFunc(MetricStoreDeleted, "Soft-deleted records (all shards).",
		func() float64 { return float64(s.coord.NumDeleted()) })
	r.GaugeFunc(MetricStoreEdges, "Distinct structural elements registered.",
		func() float64 { return float64(s.reg.Len()) })
	r.GaugeFunc(MetricStoreSizeBytes, "In-memory payload size (base columns + views, all shards).",
		func() float64 { return float64(s.coord.SizeBytes()) })
	r.GaugeFunc(MetricStoreGraphViews, "Materialized graph views.",
		func() float64 { return float64(len(s.rel.Views())) })
	r.GaugeFunc(MetricStoreAggViews, "Materialized aggregate views.",
		func() float64 { return float64(len(s.rel.AggViews())) })
	r.GaugeFunc(MetricStorePartitions, "Vertical partitions of the master relation (widest shard).",
		func() float64 { return float64(s.coord.MaxPartitions()) })
	r.CounterFunc(MetricTracesRecordedTotal, "Query traces recorded (including ones evicted from the ring).",
		func() float64 { return float64(s.coord.Traces().Total()) })

	r.GaugeFunc(MetricStoreShards, "Shards the record collection is partitioned into.",
		func() float64 { return float64(s.coord.NumShards()) })
	r.GaugeVecFunc(MetricShardRecords, "Stored graph records per shard.",
		func() map[string]float64 {
			out := make(map[string]float64, s.coord.NumShards())
			for i := 0; i < s.coord.NumShards(); i++ {
				out[obs.Labels("shard", strconv.Itoa(i))] = float64(s.coord.Unit(i).Rel.NumRecords())
			}
			return out
		})
	r.GaugeVecFunc(MetricShardQueueDepth, "Scatter-gather sub-queries queued or running per shard.",
		func() map[string]float64 {
			out := make(map[string]float64, s.coord.NumShards())
			for i := 0; i < s.coord.NumShards(); i++ {
				out[obs.Labels("shard", strconv.Itoa(i))] = float64(s.coord.Unit(i).Pending())
			}
			return out
		})
	r.GaugeVecFunc(MetricShardSizeBytes, "In-memory payload size per shard.",
		func() map[string]float64 {
			out := make(map[string]float64, s.coord.NumShards())
			for i := 0; i < s.coord.NumShards(); i++ {
				out[obs.Labels("shard", strconv.Itoa(i))] = float64(s.coord.Unit(i).Rel.SizeBytes())
			}
			return out
		})
	r.CounterVecFunc(MetricShardCacheHits, "Result cache hits per shard.",
		func() map[string]float64 {
			out := make(map[string]float64, s.coord.NumShards())
			for i := 0; i < s.coord.NumShards(); i++ {
				var hits int64
				if c := s.coord.Unit(i).Eng.Cache(); c != nil {
					hits = c.Stats().Hits
				}
				out[obs.Labels("shard", strconv.Itoa(i))] = float64(hits)
			}
			return out
		})

	// Scatter-gather phase histograms: one queue-wait series per shard plus
	// the coordinator's merge latency. Registered eagerly (even for a
	// single-shard store, where they stay at zero) so dashboards see stable
	// families across reshards.
	queueWait := make([]*obs.Histogram, s.coord.NumShards())
	for i := range queueWait {
		queueWait[i] = r.Histogram(
			MetricShardQueueWait+"{"+obs.Labels("shard", strconv.Itoa(i))+"}",
			"Scatter-gather sub-query wait from dispatch to execution start, per shard.", nil)
	}
	mergeDur := r.Histogram(MetricScatterMerge,
		"Coordinator merge-phase latency of scatter-gathered queries.", nil)
	s.coord.SetScatterHistograms(queueWait, mergeDur)

	r.CounterFunc(MetricSlowQueries, "Queries recorded in the slow-query log (including evicted entries).",
		func() float64 { return float64(s.coord.SlowLog().Total()) })

	// Paged storage & buffer pool. The counters live in the per-shard pools
	// (summed by Coordinator.StorageStats), except blocks-skipped which is a
	// process-wide colstore counter like persist-recoveries above.
	r.CounterFunc(MetricPagePoolHits, "Buffer pool block faults served by a resident decoded block (all shards).",
		func() float64 { return float64(s.coord.StorageStats().Pool.Hits) })
	r.CounterFunc(MetricPagePoolMisses, "Buffer pool block faults that decoded the block from the snapshot (all shards).",
		func() float64 { return float64(s.coord.StorageStats().Pool.Misses) })
	r.CounterFunc(MetricPagePoolEvictions, "Decoded blocks evicted by the clock sweep (all shards).",
		func() float64 { return float64(s.coord.StorageStats().Pool.Evictions) })
	r.GaugeFunc(MetricPagePoolResidentBytes, "Decoded value bytes resident in the buffer pools (all shards).",
		func() float64 { return float64(s.coord.StorageStats().Pool.ResidentBytes) })
	r.GaugeFunc(MetricPagePoolBudgetBytes, "Configured buffer pool budget (all shards; 0 = unbounded).",
		func() float64 { return float64(s.coord.StorageStats().Pool.BudgetBytes) })
	r.CounterFunc(MetricBlocksSkipped, "Measure blocks skipped by zone-map pruning during scalar MIN/MAX scans (process-wide).",
		func() float64 { return float64(colstore.BlocksSkipped()) })
	r.GaugeFunc(MetricStorageLogicalBytes, "Logical measure-column bytes: what the columns represent, regardless of residency (all shards).",
		func() float64 { return float64(s.coord.StorageStats().LogicalBytes) })
	r.GaugeFunc(MetricStorageOnDiskBytes, "Encoded measure-column bytes in the snapshot's block payloads (all shards).",
		func() float64 { return float64(s.coord.StorageStats().OnDiskBytes) })
	r.GaugeFunc(MetricStorageResidentBytes, "Decoded measure-column bytes held in memory, paged and eager (all shards).",
		func() float64 { return float64(s.coord.StorageStats().ResidentBytes) })
	r.GaugeVecFunc(MetricStorageBlocks, "Measure value blocks by encoding (all shards).",
		func() map[string]float64 {
			st := s.coord.StorageStats()
			out := make(map[string]float64, len(st.BlockEncodings))
			for i, n := range st.BlockEncodings {
				out[obs.Labels("encoding", colstore.BlockEncodingName(i))] = float64(n)
			}
			return out
		})

	// Write-ahead log. The families exist (at zero) even without WAL
	// attached, so dashboards see them the moment EnableWAL turns on.
	r.CounterFunc(MetricWALAppends, "Ops appended to the write-ahead logs (all shards).",
		func() float64 { return float64(s.coord.WALStats().Appends) })
	r.CounterFunc(MetricWALAppendedBytes, "Frame bytes appended to the write-ahead logs (all shards).",
		func() float64 { return float64(s.coord.WALStats().AppendedBytes) })
	r.CounterFunc(MetricWALFsyncs, "Fsyncs issued by the write-ahead logs; with group commit one fsync can acknowledge many appends (all shards).",
		func() float64 { return float64(s.coord.WALStats().Fsyncs) })
	r.CounterFunc(MetricWALReplayedOps, "Logged ops replayed atop the snapshot during Load (all shards, this store's lifetime).",
		func() float64 { return float64(s.coord.WALStats().ReplayedOps) })
	r.CounterFunc(MetricWALTruncations, "Log truncations: checkpoints that folded the log into a snapshot and reset it (all shards).",
		func() float64 { return float64(s.coord.WALStats().Resets) })
	r.CounterFunc(MetricWALSkippedLogs, "Logs ignored at Load because their header did not pin the loaded snapshot generation (stale or foreign logs).",
		func() float64 { return float64(s.coord.WALStats().SkippedLogs) })
	r.GaugeVecFunc(MetricWALNextLSN, "Next log sequence number per shard (0 until WAL is enabled).",
		func() map[string]float64 {
			st := s.coord.WALStats()
			out := make(map[string]float64, len(st.Shards))
			for i, sh := range st.Shards {
				out[obs.Labels("shard", strconv.Itoa(i))] = float64(sh.NextLSN)
			}
			return out
		})
	return s.metrics
}

// EnableTracing attaches a ring buffer recording one lifecycle trace per
// query (capacity ≤ 0 selects a default of 128). Tracing costs one
// allocation per query plus one per phase span, which is why it is opt-in;
// with tracing off the query path pays a single nil check.
// On a sharded store a scatter-gathered query records one hierarchical root
// trace — coordinator fan-out / per-shard queue-wait / merge spans, with each
// shard engine's trace attached as a child — while batch sub-queries record
// flat shard-labelled traces into the same ring.
func (s *Store) EnableTracing(capacity int) {
	s.coord.SetTraces(obs.NewTraceRing(capacity))
}

// DisableTracing detaches the trace ring.
func (s *Store) DisableTracing() { s.coord.SetTraces(nil) }

// RecentTraces returns the recorded traces, newest first (nil when tracing
// was never enabled). Traces marshal to JSON.
func (s *Store) RecentTraces() []Trace { return s.coord.Traces().Recent() }

// EnableSlowQueryLog attaches a bounded ring recording a structured entry —
// query text, kind, duration, I/O delta, cache/cancellation state, and on a
// sharded store the per-shard queue-wait/execution breakdown — for every
// query at or above threshold (0 logs every query; capacity ≤ 0 selects a
// default of 128). Read it back with SlowQueries, /debug/slow, or
// `grovecli slow`. Off by default: with no log attached the query path pays
// a single nil check.
func (s *Store) EnableSlowQueryLog(capacity int, threshold time.Duration) {
	s.coord.SetSlowLog(obs.NewSlowLog(capacity, threshold))
}

// DisableSlowQueryLog detaches the slow-query log.
func (s *Store) DisableSlowQueryLog() { s.coord.SetSlowLog(nil) }

// SetSlowQueryThreshold retunes the attached log's latency threshold without
// dropping recorded entries. No-op when the log is not enabled.
func (s *Store) SetSlowQueryThreshold(threshold time.Duration) {
	if l := s.coord.SlowLog(); l != nil {
		l.SetThreshold(threshold)
	}
}

// SlowQueries returns the recorded slow-query entries, newest first (nil when
// the log was never enabled). Entries marshal to JSON.
func (s *Store) SlowQueries() []SlowQuery { return s.coord.SlowLog().Recent() }

// CacheStats returns the result cache's cumulative counters, summed across
// all shards (zero when no cache is attached).
func (s *Store) CacheStats() CacheStats { return s.coord.CacheStats() }

// ViewUsage returns, per materialized view (graph and aggregate), how many
// times it answered part of a query, summed across all shards.
func (s *Store) ViewUsage() map[string]int64 { return s.coord.ViewUsage() }

// ServeMetrics starts an HTTP server on addr (use ":0" for an ephemeral
// port; read it back with Addr) exposing:
//
//	/metrics     the registry in Prometheus text format
//	/traces      the recent query traces as JSON, newest first
//	/debug/slow  the slow-query log as JSONL, newest first
//
// The registry is created on first call (see Metrics). Close the returned
// server to stop it.
func (s *Store) ServeMetrics(addr string) (*MetricsServer, error) {
	reg := s.Metrics()
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := s.RecentTraces()
		if traces == nil {
			traces = []Trace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.coord.SlowLog().WriteJSONL(w)
	})
	return obs.Serve(addr, mux)
}

// ExplainAnalyze computes a graph query's plan and executes it once with
// tracing forced on, returning predicted cost and observed per-phase wall
// time and I/O together. The run bypasses the result cache, so the observed
// bitmap-fetch count equals the plan's BitmapsFetched. On a sharded store the
// analysis's root trace carries one child per shard and its observed I/O is
// the exact sum over the children (see Coordinator.ExplainAnalyze).
func (s *Store) ExplainAnalyze(g *Graph) (*ExplainAnalysis, error) {
	return s.coord.ExplainAnalyzeGraph(g)
}
