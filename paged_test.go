package grove

import (
	"math"
	"testing"
)

// pagedCorpus builds a store whose measure columns exercise all four block
// encodings plus the floating-point edge cases the bit-identity claim is
// about (−0, ±MaxFloat64, denormals; records reject non-finite measures),
// with a sprinkling of soft deletions.
//
//	A→B  constant            → run-length blocks
//	B→C  16 distinct values  → dictionary blocks
//	C→D  monotonic integers  → XOR-delta blocks (and MIN zone-skip fodder)
//	D→E  pseudo-random bits  → raw blocks
//
// n should exceed 4096 so every column spans several blocks.
func pagedCorpus(t *testing.T, st *Store, n int) {
	t.Helper()
	rnd := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd
	}
	for i := 0; i < n; i++ {
		rec := NewRecord()
		if err := rec.SetEdge("A", "B", 7); err != nil {
			t.Fatal(err)
		}
		if err := rec.SetEdge("B", "C", float64(i%16)*1.25); err != nil {
			t.Fatal(err)
		}
		if err := rec.SetEdge("C", "D", float64(1<<20+i)); err != nil {
			t.Fatal(err)
		}
		var v float64
		switch i % 97 {
		case 0:
			v = math.Copysign(0, -1)
		case 1:
			v = math.MaxFloat64
		case 2:
			v = -math.MaxFloat64
		case 3:
			v = 5e-324 // smallest denormal
		default:
			v = math.Float64frombits(next())
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(i)
			}
		}
		if err := rec.SetEdge("D", "E", v); err != nil {
			t.Fatal(err)
		}
		if err := rec.SetEdgeNamed("A", "B", "w", float64(i%5)); err != nil {
			t.Fatal(err)
		}
		id := st.Add(rec)
		if i%17 == 0 {
			if _, err := st.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// aggAnswers runs the row and scalar aggregation surface once and returns
// everything bitwise-comparable.
type aggAnswers struct {
	matched int
	rows    map[string][]uint64 // agg name → FoldAcrossPaths bits in record order
	ids     map[string][]uint32
	scalar  map[string]uint64 // agg name → scalar fold bits
}

func collectAnswers(t *testing.T, st *Store, nodes ...string) aggAnswers {
	t.Helper()
	out := aggAnswers{rows: map[string][]uint64{}, ids: map[string][]uint32{}, scalar: map[string]uint64{}}
	res, err := st.MatchPath(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	out.matched = res.NumRecords()
	for _, f := range []AggFunc{Sum, Min, Max, Count} {
		rows, err := st.AggregatePath(f, nodes...)
		if err != nil {
			t.Fatal(err)
		}
		folded := rows.FoldAcrossPaths()
		bits := make([]uint64, len(folded))
		for i, v := range folded {
			bits[i] = math.Float64bits(v)
		}
		out.rows[f.Name] = bits
		out.ids[f.Name] = rows.RecordIDs

		sc, err := st.AggregateScalarPath(f, nodes...)
		if err != nil {
			t.Fatal(err)
		}
		out.scalar[f.Name] = math.Float64bits(sc.Value)

		// The scalar plan must agree with folding the rows, whatever plan
		// answered it.
		acc, any := f.Identity, false
		for _, b := range bits {
			if v := math.Float64frombits(b); !math.IsNaN(v) {
				acc = f.Fold(acc, v)
				any = true
			}
		}
		if !any {
			acc = math.NaN()
		}
		if math.Float64bits(acc) != out.scalar[f.Name] {
			t.Fatalf("%s scalar %x disagrees with row fold %x",
				f.Name, out.scalar[f.Name], math.Float64bits(acc))
		}
	}
	return out
}

func diffAnswers(t *testing.T, label string, want, got aggAnswers) {
	t.Helper()
	if want.matched != got.matched {
		t.Fatalf("%s: matched %d records, want %d", label, got.matched, want.matched)
	}
	for name, wbits := range want.rows {
		gbits := got.rows[name]
		if len(gbits) != len(wbits) {
			t.Fatalf("%s: %s returned %d rows, want %d", label, name, len(gbits), len(wbits))
		}
		for i := range wbits {
			if gbits[i] != wbits[i] {
				t.Fatalf("%s: %s row %d (record %d) = %x, want %x",
					label, name, i, got.ids[name][i], gbits[i], wbits[i])
			}
		}
		if got.scalar[name] != want.scalar[name] {
			t.Fatalf("%s: %s scalar = %x, want %x", label, name, got.scalar[name], want.scalar[name])
		}
	}
}

// TestPagedBitIdentical is the tentpole's correctness claim: a store reloaded
// through the paged v2 snapshot — lazily faulting compressed blocks through a
// buffer pool — answers every query bit-identically to the in-memory store it
// was saved from, at pool budgets down to 1% of the logical column bytes.
func TestPagedBitIdentical(t *testing.T) {
	const n = 3*4096/2 + 37 // several blocks per column, ragged tail
	mem := Open()
	pagedCorpus(t, mem, n)
	path := []string{"A", "B", "C", "D", "E"}
	want := collectAnswers(t, mem, path...)
	if want.matched == 0 {
		t.Fatal("corpus matched no records; the comparison would be vacuous")
	}

	dir := t.TempDir()
	if err := mem.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	st := loaded.StorageStats()
	if st.PagedColumns == 0 {
		t.Fatal("loaded store has no paged columns; the snapshot did not use the v2 format")
	}
	for i := 0; i < NumBlockEncodings; i++ {
		if st.BlockEncodings[i] == 0 {
			t.Fatalf("corpus produced no %s blocks; encoding coverage is incomplete", BlockEncodingName(i))
		}
	}
	if st.OnDiskBytes >= st.LogicalBytes {
		t.Fatalf("encoded snapshot (%d bytes) is not smaller than logical (%d bytes)",
			st.OnDiskBytes, st.LogicalBytes)
	}

	for _, pct := range []int64{1, 10, 50, 0} {
		budget := st.LogicalBytes * pct / 100 // 0 = unbounded
		loaded.SetPageCacheBytes(budget)
		got := collectAnswers(t, loaded, path...)
		diffAnswers(t, "paged", want, got)
		if err := loaded.PageError(); err != nil {
			t.Fatalf("budget %d%%: page error after clean differential run: %v", pct, err)
		}
		if budget > 0 {
			if res := loaded.StorageStats().Pool.ResidentBytes; res > budget+8*4096 {
				t.Fatalf("budget %d bytes but %d resident (more than one block over)", budget, res)
			}
		}
	}

	// Named measures page too.
	wantW, err := mem.AggregatePathMeasure(Sum, "w", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	gotW, err := loaded.AggregatePathMeasure(Sum, "w", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	wf, gf := wantW.FoldAcrossPaths(), gotW.FoldAcrossPaths()
	if len(wf) != len(gf) {
		t.Fatalf("named measure rows %d, want %d", len(gf), len(wf))
	}
	for i := range wf {
		if math.Float64bits(wf[i]) != math.Float64bits(gf[i]) {
			t.Fatalf("named measure row %d: %x want %x", i, math.Float64bits(gf[i]), math.Float64bits(wf[i]))
		}
	}
}

// TestPagedZoneSkipEngages asserts the scalar MIN plan actually skips blocks
// on a favourable column (monotonic values: only the first block can hold the
// minimum) — guarding against the skip silently degrading to a full scan.
func TestPagedZoneSkipEngages(t *testing.T) {
	mem := Open()
	pagedCorpus(t, mem, 3*4096)
	dir := t.TempDir()
	if err := mem.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	res, err := loaded.AggregateScalarPath(Min, "C", "D")
	if err != nil {
		t.Fatal(err)
	}
	if !res.ZoneSkipped {
		t.Fatal("scalar MIN over a single-edge path did not take the zone-skipping plan")
	}
	if res.BlocksSkipped == 0 {
		t.Fatalf("monotonic column: expected skipped blocks, scanned=%d skipped=%d",
			res.BlocksScanned, res.BlocksSkipped)
	}
	// Record 0 (value 1<<20) is deleted by the corpus; the surviving minimum
	// is record 1's value. Spell it out rather than trusting the scan.
	if got := math.Float64bits(res.Value); got != math.Float64bits(float64(1<<20+1)) {
		t.Fatalf("zone-skipped MIN = %x (%v), want %v", got, res.Value, float64(1<<20+1))
	}
}

// TestPagedShardedBitIdentical runs the same differential across a sharded
// store: in-memory N-shard answers, reloaded paged N-shard answers at a 1%
// pool budget, and the single-shard reference must all agree bit-for-bit.
func TestPagedShardedBitIdentical(t *testing.T) {
	const n = 4096 + 513
	ref := Open()
	pagedCorpus(t, ref, n)
	path := []string{"A", "B", "C", "D", "E"}
	want := collectAnswers(t, ref, path...)

	sharded := NewSharded(3)
	pagedCorpus(t, sharded, n)
	diffAnswers(t, "sharded in-memory", want, collectAnswers(t, sharded, path...))

	dir := t.TempDir()
	if err := sharded.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.NumShards() != 3 {
		t.Fatalf("reloaded store has %d shards, want 3", loaded.NumShards())
	}
	loaded.SetPageCacheBytes(loaded.StorageStats().LogicalBytes / 100)
	diffAnswers(t, "sharded paged", want, collectAnswers(t, loaded, path...))
	if err := loaded.PageError(); err != nil {
		t.Fatal(err)
	}
}
