package grove_test

import (
	"fmt"
	"log"
	"os"
	"strings"

	"grove"
)

// load returns a store with the paper's three Fig. 2 records.
func load() *grove.Store {
	st := grove.Open()
	type leg struct {
		from, to string
		m        float64
	}
	for _, legs := range [][]leg{
		{{"A", "B", 3}, {"A", "C", 4}, {"C", "E", 2}, {"A", "D", 1}, {"D", "E", 2}},
		{{"A", "C", 1}, {"C", "E", 2}, {"A", "D", 2}, {"D", "E", 1}, {"E", "F", 4}, {"F", "G", 1}},
		{{"A", "D", 5}, {"D", "E", 4}, {"E", "F", 3}, {"F", "G", 1}},
	} {
		rec := grove.NewRecord()
		for _, l := range legs {
			if err := rec.SetEdge(l.from, l.to, l.m); err != nil {
				log.Fatal(err)
			}
		}
		st.Add(rec)
	}
	return st
}

func ExampleStore_MatchPath() {
	st := load()
	res, err := st.MatchPath("A", "C", "E")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("records containing path [A,C,E]:", res.Answer.ToSlice())
	// Output: records containing path [A,C,E]: [0 1]
}

func ExampleStore_AggregatePath() {
	st := load()
	// The paper's §3.4 example: SUM along (A,C,E,F) matches only record 2.
	agg, err := st.AggregatePath(grove.Sum, "A", "C", "E", "F")
	if err != nil {
		log.Fatal(err)
	}
	for i, rec := range agg.RecordIDs {
		fmt.Printf("record %d: total %.0f\n", rec, agg.Values[0][i])
	}
	// Output: record 1: total 7
}

func ExampleStore_Eval() {
	st := load()
	ids, err := st.Eval(grove.AndNot(grove.QPath("A", "D", "E"), grove.QPath("E", "F")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("with [A,D,E] but without (E,F):", ids.ToSlice())
	// Output: with [A,D,E] but without (E,F): [0]
}

func ExampleStore_Query() {
	st := load()
	res, err := st.Query("SUM [E,F,G]")
	if err != nil {
		log.Fatal(err)
	}
	for i, rec := range res.Agg.RecordIDs {
		fmt.Printf("record %d: %.0f\n", rec, res.Agg.Values[0][i])
	}
	// Output:
	// record 1: 5
	// record 2: 4
}

func ExampleStore_MaterializeView() {
	st := load()
	bv1 := grove.PathOf("A", "C", "E").ToGraph()
	if err := st.MaterializeView("bv1", bv1); err != nil {
		log.Fatal(err)
	}
	ex, err := st.Explain(bv1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bitmaps fetched: %d (saved %d)\n", ex.BitmapsFetched, ex.BitmapsSaved)
	// Output: bitmaps fetched: 1 (saved 1)
}

func ExampleStore_ImportTraces() {
	st := grove.Open()
	traces := `{"edges":[{"from":"A","to":"B","measure":2}],"tags":{"type":"fast"}}
{"edges":[{"from":"A","to":"B","measure":5}]}`
	n, err := st.ImportTraces(strings.NewReader(traces))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("imported:", n)
	fmt.Println("fast ones:", st.TaggedWith("type", "fast").ToSlice())
	// Output:
	// imported: 2
	// fast ones: [0]
}

func ExampleSummarize() {
	s := grove.Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	fmt.Printf("mean %.1f stddev %.1f\n", s.Mean, s.StdDev)
	// Output: mean 5.0 stddev 2.0
}

func ExampleStore_AdviseGraphViews() {
	st := load()
	workload := []*grove.Graph{
		grove.PathOf("A", "D", "E", "F").ToGraph(),
		grove.PathOf("A", "D", "E", "F", "G").ToGraph(),
	}
	rep, err := st.AdviseGraphViews(workload, 2, grove.AdvisorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	st.RenderAdvice(os.Stdout, rep)
	// After the shared 3-edge subpath is materialized, the only remaining
	// edge (F,G) is covered as cheaply by its own bitmap, so one view wins.
	// Output:
	// workload: 2 queries, 7 bitmap fetches without views
	// with 1 views: 3 fetches (57.1% saved)
	//    1. 3 edges, used by 2 queries: (A,D) (D,E) (E,F)
}
