//go:build race

package grove

// raceEnabled reports whether this test binary was built with -race.
// Allocation-count guards skip themselves under the race detector because
// sync.Pool deliberately drops a random 1/4 of Puts there, making
// AllocsPerRun nondeterministic; the plain `go test` pass still enforces
// them.
const raceEnabled = true
