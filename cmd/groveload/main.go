// Command groveload builds a grove store directory that grovecli and library
// users can open — either by synthesizing a dataset (NY-like or GNU-like,
// §7.1) or by importing a JSONL trace file.
//
// Usage:
//
//	groveload -out /tmp/ny -records 100000
//	groveload -out /tmp/gnu -records 50000 -dataset gnu -seed 7
//	groveload -out /tmp/prod -input traces.jsonl
//	groveload -out /tmp/big -records 200000 -shards 8   # sharded layout
//	groveload -out /tmp/dur -records 100000 -fsync always  # ingest through the WAL
//
// With -fsync POLICY (always | interval | never) the ingest runs write-ahead
// logged under that fsync policy — every record goes through the durable
// Append path before the final checkpoint folds the log into the snapshot —
// exercising exactly the code path a crash-safe production ingest uses.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"grove"
	"grove/internal/workload"
)

func main() {
	var (
		out     = flag.String("out", "", "output directory (required)")
		input   = flag.String("input", "", "JSONL trace file to import instead of synthesizing")
		dataset = flag.String("dataset", "ny", "dataset family: ny | gnu")
		records = flag.Int("records", 10000, "number of graph records")
		domain  = flag.Int("domain", 1000, "edge-domain size")
		minE    = flag.Int("min", 0, "min edges per record (0 = family default)")
		maxE    = flag.Int("max", 0, "max edges per record (0 = family default)")
		seed    = flag.Int64("seed", 42, "generator seed")
		keep    = flag.Int("keep", 0, "snapshot generations to retain on disk (0 = default)")
		shards  = flag.Int("shards", 1, "shards to partition the store into (1 = flat single-relation layout)")
		fsync   = flag.String("fsync", "", "write-ahead log the ingest under this fsync policy: always | interval | never (empty = no WAL)")
	)
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "groveload: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "groveload: -shards must be >= 1")
		os.Exit(2)
	}
	walled := *fsync != ""
	var walCfg grove.WALConfig
	if walled {
		pol, err := grove.ParseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "groveload:", err)
			os.Exit(2)
		}
		walCfg = grove.WALConfig{Policy: pol}
	}

	if *input != "" {
		importTraces(*input, *out, *keep, *shards, walled, walCfg)
		return
	}

	var spec workload.DatasetSpec
	switch *dataset {
	case "ny":
		spec = workload.NYSpec(*records, *seed)
	case "gnu":
		spec = workload.GNUSpec(*records, *seed)
	default:
		fmt.Fprintf(os.Stderr, "groveload: unknown dataset family %q (ny|gnu)\n", *dataset)
		os.Exit(2)
	}
	spec.EdgeDomain = *domain
	if *minE > 0 {
		spec.MinEdges = *minE
	}
	if *maxE > 0 {
		spec.MaxEdges = *maxE
	}

	fmt.Fprintf(os.Stderr, "building %s dataset: %d records, %d-edge domain, %d shard(s) ...\n",
		spec.Name, spec.NumRecords, spec.EdgeDomain, *shards)
	// Sharded and WAL-logged ingests reroute records through the coordinator.
	spec.KeepRecords = *shards > 1 || walled
	ds, err := workload.Build(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "groveload:", err)
		os.Exit(1)
	}
	if walled {
		// Durable ingest: EnableWAL bootstraps out with an empty snapshot and
		// fresh logs, every Append is logged before it applies, and the final
		// Save checkpoints — folding the log back into the snapshot.
		st := grove.NewSharded(*shards)
		st.SetSnapshotKeep(*keep)
		if err := st.EnableWAL(*out, walCfg); err != nil {
			fmt.Fprintln(os.Stderr, "groveload:", err)
			os.Exit(1)
		}
		for _, rec := range ds.Records {
			if _, err := st.Append(rec); err != nil {
				fmt.Fprintln(os.Stderr, "groveload:", err)
				os.Exit(1)
			}
		}
		st.Optimize()
		ws := st.WALStats()
		fmt.Fprintf(os.Stderr, "wal: %d appends, %d bytes, %d fsyncs (policy %s)\n",
			ws.Appends, ws.AppendedBytes, ws.Fsyncs, ws.Policy)
		if err := st.Save(*out); err != nil {
			fmt.Fprintln(os.Stderr, "groveload:", err)
			os.Exit(1)
		}
	} else if *shards > 1 {
		st := grove.NewSharded(*shards)
		for _, rec := range ds.Records {
			st.Add(rec)
		}
		st.Optimize()
		st.SetSnapshotKeep(*keep)
		if err := st.Save(*out); err != nil {
			fmt.Fprintln(os.Stderr, "groveload:", err)
			os.Exit(1)
		}
	} else {
		ds.Rel.SetSnapshotKeep(*keep)
		if err := ds.Rel.Save(*out); err != nil {
			fmt.Fprintln(os.Stderr, "groveload:", err)
			os.Exit(1)
		}
		if err := ds.Reg.Save(*out + "/registry.json"); err != nil {
			fmt.Fprintln(os.Stderr, "groveload:", err)
			os.Exit(1)
		}
	}
	sz, err := diskSize(*out)
	if err != nil {
		sz = -1
	}
	fmt.Println(ds.Stats)
	fmt.Printf("saved to %s (%.2f MB on disk)\n", *out, float64(sz)/(1<<20))
}

// diskSize totals every file under dir — unlike colstore.DiskSizeBytes it
// also covers the sharded layout's nested shard-NNN directories.
func diskSize(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	return total, err
}

func importTraces(input, out string, keep, shards int, walled bool, walCfg grove.WALConfig) {
	f, err := os.Open(input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "groveload:", err)
		os.Exit(1)
	}
	defer f.Close()
	st := grove.NewSharded(shards)
	if walled {
		// With WAL enabled first, every imported record takes the logged
		// Append path; the Save below checkpoints the log away.
		if err := st.EnableWAL(out, walCfg); err != nil {
			fmt.Fprintln(os.Stderr, "groveload:", err)
			os.Exit(1)
		}
	}
	n, err := st.ImportTraces(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "groveload:", err)
		os.Exit(1)
	}
	st.Optimize()
	st.SetSnapshotKeep(keep)
	if err := st.Save(out); err != nil {
		fmt.Fprintln(os.Stderr, "groveload:", err)
		os.Exit(1)
	}
	fmt.Printf("imported %d trace records (%d distinct edges) into %s\n",
		n, st.NumEdges(), out)
}
