// Command grovebench regenerates the tables and figures of the paper's
// evaluation section over grove's synthetic stand-in datasets.
//
// Usage:
//
//	grovebench -exp fig6                # one experiment
//	grovebench -exp all                 # the whole suite
//	grovebench -exp fig3a -csv          # machine-readable output
//	grovebench -exp measurescan -json   # JSON output (baseline files)
//	grovebench -exp fig6 -ny 100000     # scale a dataset up
//	grovebench -exp batch -parallel     # batch speedup, NumCPU workers
//	grovebench -exp batch -workers 8    # batch speedup, fixed pool size
//	grovebench -exp replay              # record→replay round trip, digests verified
//	grovebench -exp replay -replay-log w.jsonl -replay-store /tmp/ny
//	                                    # replay a captured workload against a saved store
//	grovebench -list                    # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"grove/internal/bench"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list = flag.Bool("list", false, "list experiments and exit")
		csv  = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		js   = flag.Bool("json", false, "emit JSON instead of an aligned table")

		sens     = flag.Int("sens", 0, "sensitivity-unit record count (fig3/4/5 base; 0 = default)")
		ny       = flag.Int("ny", 0, "NY dataset record count (fig6/8/9; 0 = default)")
		gnu      = flag.Int("gnu", 0, "GNU dataset record count (fig7/8; 0 = default)")
		queries  = flag.Int("q", 0, "queries per workload (0 = default 100)")
		seed     = flag.Int64("seed", 42, "workload seed")
		parallel = flag.Bool("parallel", false, "run batch workloads across runtime.NumCPU() workers")
		workers  = flag.Int("workers", 0, "worker-pool size for batch workloads (implies -parallel; 0 = NumCPU with -parallel)")

		replayLog   = flag.String("replay-log", "", "replay this captured workload log (grove.StartWorkloadRecording) instead of the self-contained round trip (replay experiment only)")
		replayStore = flag.String("replay-store", "", "saved store directory to replay -replay-log against")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}

	sc := bench.DefaultScale()
	sc.Seed = *seed
	if *sens > 0 {
		sc.SensitivityRecords = *sens
	}
	if *ny > 0 {
		sc.NYRecords = *ny
	}
	if *gnu > 0 {
		sc.GNURecords = *gnu
	}
	if *queries > 0 {
		sc.NumQueries = *queries
	}
	if *workers > 0 {
		sc.Workers = *workers
	} else if *parallel {
		sc.Workers = runtime.NumCPU()
	}
	sc.ReplayLog = *replayLog
	sc.ReplayStore = *replayStore

	var experiments []bench.Experiment
	if *exp == "all" {
		experiments = bench.Registry()
	} else {
		e, err := bench.Lookup(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		experiments = []bench.Experiment{e}
	}

	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "running %s: %s ...\n", e.ID, e.Description)
		tab, err := e.Run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		var werr error
		switch {
		case *js:
			werr = tab.JSON(os.Stdout)
		case *csv:
			werr = tab.CSV(os.Stdout)
		default:
			werr = tab.Print(os.Stdout)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "%s: writing output: %v\n", e.ID, werr)
			os.Exit(1)
		}
	}
}
