// Command grovevet runs grove's project-specific static-analysis suite
// (internal/lint) over the module and prints file:line:column diagnostics.
// It exits non-zero when there are findings, so `make lint` and CI can gate
// on it. The suite is stdlib-only — no compiled artifacts, no x/tools — so
// it runs anywhere the source tree does.
//
// Usage:
//
//	grovevet [-C dir] [-v] [-json] [-deadline d]
//
// -C selects the module directory (default "."); -v lists the analyzers and
// loaded packages before the findings; -json emits one JSON object per
// finding (file/line/col/analyzer/message) instead of the human format;
// -deadline fails the run (exit 3) when the whole analysis exceeds d — the
// lint-runtime budget CI smoke-checks so the interprocedural suite stays
// fast enough to gate every push.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"grove/internal/lint"
)

// jsonDiag is the machine-readable form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	dir := flag.String("C", ".", "module directory to analyze")
	verbose := flag.Bool("v", false, "list analyzers and packages before findings")
	jsonOut := flag.Bool("json", false, "emit findings as JSON lines instead of the human format")
	deadline := flag.Duration("deadline", 0, "fail (exit 3) when the analysis takes longer than this (0 = no limit)")
	flag.Parse()

	start := time.Now()
	m, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grovevet:", err)
		os.Exit(2)
	}
	analyzers := lint.Analyzers()
	if *verbose && !*jsonOut {
		fmt.Printf("grovevet: module %s (%d packages)\n", m.Path, len(m.Pkgs))
		for _, a := range analyzers {
			fmt.Printf("  %-14s %s\n", a.Name, a.Doc)
		}
	}
	diags := lint.Run(m, analyzers, lint.DefaultFilter(m))
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(m.Dir, name); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			name = rel
		}
		if *jsonOut {
			_ = enc.Encode(jsonDiag{ //grovevet:ignore droppederr an Encode failure means stdout is gone; the exit code below still reports findings
				File: name, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		} else {
			fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	elapsed := time.Since(start)
	if *deadline > 0 && elapsed > *deadline {
		fmt.Fprintf(os.Stderr, "grovevet: analysis took %s, over the %s deadline\n",
			elapsed.Round(time.Millisecond), *deadline)
		os.Exit(3)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "grovevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
