// Command grovevet runs grove's project-specific static-analysis suite
// (internal/lint) over the module and prints file:line:column diagnostics.
// It exits non-zero when there are findings, so `make lint` and CI can gate
// on it. The suite is stdlib-only — no compiled artifacts, no x/tools — so
// it runs anywhere the source tree does.
//
// Usage:
//
//	grovevet [-C dir] [-v]
//
// -C selects the module directory (default "."); -v lists the analyzers and
// loaded packages before the findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"grove/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module directory to analyze")
	verbose := flag.Bool("v", false, "list analyzers and packages before findings")
	flag.Parse()

	m, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grovevet:", err)
		os.Exit(2)
	}
	analyzers := lint.Analyzers()
	if *verbose {
		fmt.Printf("grovevet: module %s (%d packages)\n", m.Path, len(m.Pkgs))
		for _, a := range analyzers {
			fmt.Printf("  %-14s %s\n", a.Name, a.Doc)
		}
	}
	diags := lint.Run(m, analyzers, lint.DefaultFilter(m))
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(m.Dir, name); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "grovevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
