// Command grovecli opens a saved grove store and runs ad-hoc inspections and
// queries against it.
//
// Usage:
//
//	grovecli -store /tmp/ny info
//	grovecli -store /tmp/ny match n1 n2 n13          # path containment query
//	grovecli -store /tmp/ny agg SUM n1 n2 n13        # path aggregation
//	grovecli -store /tmp/ny avg n1 n2 n13            # algebraic AVG along a path
//	grovecli -store /tmp/ny summary SUM n1 n2 n13    # consolidated statistics
//	grovecli -store /tmp/ny views                    # list materialized views
//	grovecli -store /tmp/ny addview myview n1 n2 n13 # materialize a graph view
//	grovecli -store /tmp/ny addagg myagg SUM n1 n2 n13
//	grovecli -store /tmp/ny tag 17 type fast-track   # tag a record
//	grovecli -store /tmp/ny q "[n1,n2] AND NOT [n3,n4]"  # text query language
//	grovecli -store /tmp/ny q "SUM [n1,n2,n13]"
//	grovecli -store /tmp/ny advise workload.grq 20   # propose views for a workload
//	grovecli -store /tmp/ny analyze n1 n2 n13        # EXPLAIN ANALYZE a path query
//	grovecli -store /tmp/ny metrics "[n1,n2]"        # run statements, dump metrics
//	grovecli -store /tmp/ny slow "SUM [n1,n2,n13]"   # run statements, dump slow-query log
//	grovecli -store /tmp/ny recover                  # inventory snapshot generations
//	grovecli -store /tmp/ny recover gen-000001       # force-install a generation
//	grovecli -store /tmp/ny wal                      # inspect the write-ahead logs
//
// On a sharded store directory (groveload -shards N), recover lists every
// shard's generations and marks the cut the SHARDS.json manifest pins, and
// wal lists every shard's log.
//
// With -metrics ADDR, grovecli serves /metrics (Prometheus text), /traces
// (JSON) and /debug/slow (JSONL) on ADDR after the command runs, until
// interrupted.
//
// Mutating commands (addview, addagg, tag) re-save the store before exiting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"grove"
	"grove/internal/shard"
)

func main() {
	store := flag.String("store", "", "store directory written by groveload or Store.Save (required)")
	limit := flag.Int("limit", 10, "max records to print for match/agg")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /traces on this address after the command runs, until interrupted (e.g. :9090)")
	flag.Parse()

	if *store == "" || flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	// recover inspects the snapshot generations on disk and must work on a
	// store too damaged to load, so it is handled before LoadStore.
	if flag.Arg(0) == "recover" {
		recoverStore(*store, flag.Args()[1:])
		return
	}
	// wal likewise inspects the write-ahead logs without loading (Scan never
	// modifies them), so it works mid-crash-investigation on a damaged store.
	if flag.Arg(0) == "wal" {
		inspectWAL(*store)
		return
	}
	st, err := grove.LoadStore(*store)
	if err != nil {
		fatal(err)
	}
	var msrv *grove.MetricsServer
	if *metricsAddr != "" {
		// Wire metrics, tracing and the slow-query log (threshold 0: log
		// everything) before the command so its queries show up.
		st.EnableTracing(0)
		st.EnableSlowQueryLog(0, 0)
		if msrv, err = st.ServeMetrics(*metricsAddr); err != nil {
			fatal(err)
		}
	}

	args := flag.Args()
	switch cmd := args[0]; cmd {
	case "info":
		info(st)
	case "match":
		if len(args) < 3 {
			fatal(fmt.Errorf("match needs at least 2 node names"))
		}
		match(st, args[1:], *limit)
	case "agg":
		if len(args) < 4 {
			fatal(fmt.Errorf("agg needs a function and at least 2 node names"))
		}
		aggregate(st, args[1], args[2:], *limit)
	case "views":
		listViews(st)
	case "addview":
		if len(args) < 4 {
			fatal(fmt.Errorf("addview needs a name and at least 2 node names"))
		}
		addView(st, *store, args[1], args[2:])
	case "addagg":
		if len(args) < 5 {
			fatal(fmt.Errorf("addagg needs a name, a function and at least 2 node names"))
		}
		addAggView(st, *store, args[1], args[2], args[3:])
	case "avg":
		if len(args) < 3 {
			fatal(fmt.Errorf("avg needs at least 2 node names"))
		}
		average(st, args[1:], *limit)
	case "summary":
		if len(args) < 4 {
			fatal(fmt.Errorf("summary needs a function and at least 2 node names"))
		}
		summary(st, args[1], args[2:])
	case "tag":
		if len(args) != 4 {
			fatal(fmt.Errorf("tag needs a record id, a key and a value"))
		}
		tagRecord(st, *store, args[1], args[2], args[3])
	case "q":
		if len(args) != 2 {
			fatal(fmt.Errorf("q needs one quoted statement"))
		}
		textQuery(st, args[1], *limit)
	case "explain":
		if len(args) < 3 {
			fatal(fmt.Errorf("explain needs at least 2 node names"))
		}
		explain(st, args[1:])
	case "analyze":
		if len(args) < 3 {
			fatal(fmt.Errorf("analyze needs at least 2 node names"))
		}
		analyze(st, args[1:])
	case "metrics":
		dumpMetrics(st, args[1:], *limit)
	case "slow":
		slowQueries(st, args[1:], *limit)
	case "advise":
		if len(args) != 3 {
			fatal(fmt.Errorf("advise needs a workload file and a budget k"))
		}
		advise(st, args[1], args[2])
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}

	if msrv != nil {
		fmt.Fprintf(os.Stderr, "serving http://%s/metrics, /traces and /debug/slow (interrupt to exit)\n", msrv.Addr())
		select {}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: grovecli -store DIR <info|match|agg|avg|summary|q|explain|analyze|metrics|slow|advise|views|addview|addagg|tag|recover|wal> [args]")
	flag.PrintDefaults()
}

// recoverStore lists the store's snapshot generations, or with a generation
// name argument force-installs that generation as CURRENT. It never loads
// the store, so it works when the installed snapshot is damaged. Sharded
// stores list every shard's generations with the manifest's pinned cut
// marked; their loadable state is the SHARDS.json manifest, so per-shard
// force-install is refused.
func recoverStore(dir string, args []string) {
	if shard.IsShardedDir(dir) {
		recoverSharded(dir, args)
		return
	}
	switch len(args) {
	case 0:
		infos, err := grove.Generations(dir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s %12s  %-8s %s\n", "GENERATION", "BYTES", "CURRENT", "STATUS")
		for _, info := range infos {
			cur := ""
			if info.Current {
				cur = "current"
			}
			fmt.Printf("%-14s %12d  %-8s %s\n", info.Name, info.SizeBytes, cur, info.Status)
		}
		fmt.Fprintln(os.Stderr, "\nto force-install a generation: grovecli -store DIR recover <generation>")
	case 1:
		gen := args[0]
		if err := grove.Rollback(dir, gen); err != nil {
			fatal(err)
		}
		fmt.Printf("installed %s as the current generation of %s\n", gen, dir)
		// Prove the rollback target actually loads end to end.
		if _, err := grove.LoadStore(dir); err != nil {
			fatal(fmt.Errorf("rolled back, but the store still fails to load: %w", err))
		}
		fmt.Println("store loads cleanly")
	default:
		fatal(fmt.Errorf("recover takes at most one generation name"))
	}
}

// recoverSharded inventories every shard's generations, marking the cut the
// durable SHARDS.json manifest pins (which is what Load reconstructs, even
// when a crashed save left newer per-shard CURRENT pointers behind).
func recoverSharded(dir string, args []string) {
	if len(args) > 0 {
		fatal(fmt.Errorf("sharded stores recover through the SHARDS.json manifest, which always pins a consistent cross-shard cut; per-shard force-install would tear it"))
	}
	dirs, err := shard.ShardDirs(dir)
	if err != nil {
		fatal(err)
	}
	pinned, err := shard.PinnedGenerations(dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-10s %-14s %12s  %-8s %-8s %s\n", "SHARD", "GENERATION", "BYTES", "CURRENT", "PINNED", "STATUS")
	for i, sd := range dirs {
		infos, err := grove.Generations(sd)
		if err != nil {
			fatal(fmt.Errorf("shard %d: %w", i, err))
		}
		for _, info := range infos {
			cur, pin := "", ""
			if info.Current {
				cur = "current"
			}
			if info.Name == pinned[i] {
				pin = "pinned"
			}
			fmt.Printf("%-10d %-14s %12d  %-8s %-8s %s\n", i, info.Name, info.SizeBytes, cur, pin, info.Status)
		}
	}
	fmt.Fprintln(os.Stderr, "\nLoad reconstructs the pinned cut; it ignores per-shard CURRENT pointers")
}

// inspectWAL scans the store's write-ahead log files read-only and reports
// each one's identity (pinned generation, LSN range), contents and tail
// health. A torn tail here is normal after a crash: Load truncates it and
// replays the valid prefix.
func inspectWAL(dir string) {
	infos, err := grove.InspectWAL(dir)
	if err != nil {
		fatal(err)
	}
	for i, info := range infos {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s\n", info.Path)
		if !info.Exists {
			fmt.Println("  no log file (store runs without WAL, or it was never enabled)")
			continue
		}
		if !info.HeaderOK {
			fmt.Printf("  header unreadable: %s\n", info.HeaderErr)
			fmt.Println("  replay ignores this log; the snapshot alone carries the state")
			continue
		}
		fmt.Printf("  shard:      %d\n", info.Shard)
		fmt.Printf("  generation: %s (the snapshot this log extends)\n", info.Gen)
		fmt.Printf("  lsn range:  [%d, %d)  %d op(s)\n", info.BaseLSN, info.NextLSN, info.Ops)
		if len(info.Kinds) > 0 {
			var parts []string
			for _, k := range []string{"add-record", "append-edge", "delete", "undelete", "tag"} {
				if n := info.Kinds[k]; n > 0 {
					parts = append(parts, fmt.Sprintf("%s=%d", k, n))
				}
			}
			fmt.Printf("  ops:        %s\n", strings.Join(parts, " "))
		}
		if info.TornBytes > 0 {
			fmt.Printf("  tail:       TORN — %d valid byte(s), %d torn (%s)\n",
				info.GoodBytes, info.TornBytes, info.TornReason)
			fmt.Println("              Load truncates the torn tail and replays the valid prefix")
		} else {
			fmt.Printf("  tail:       clean (%d bytes)\n", info.GoodBytes)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grovecli:", err)
	os.Exit(1)
}

func info(st *grove.Store) {
	s := st.Stats()
	fmt.Printf("records:         %d (%d deleted)\n", s.Records, s.Deleted)
	fmt.Printf("shards:          %d\n", s.Shards)
	fmt.Printf("distinct edges:  %d over %d partition(s)\n", s.DistinctEdges, s.Partitions)
	fmt.Printf("measures:        %d values", s.TotalMeasures)
	if len(s.MeasureNames) > 0 {
		fmt.Printf(" (named: %s)", strings.Join(s.MeasureNames, " "))
	}
	fmt.Println()
	fmt.Printf("payload bytes:   %d base + %d views\n", s.BaseSizeBytes, s.ViewSizeBytes)
	fmt.Printf("graph views:     %d  %s\n", s.GraphViews, strings.Join(st.ViewNames(), " "))
	fmt.Printf("aggregate views: %d  %s\n", s.AggregateViews, strings.Join(st.AggViewNames(), " "))
	if len(s.TagKeys) > 0 {
		fmt.Printf("tag keys:        %s\n", strings.Join(s.TagKeys, " "))
	}
	// Storage residency (DESIGN.md §13): logical is what the measure columns
	// represent, on-disk is their encoded block payloads, resident is what is
	// decoded in memory right now.
	stg := s.Storage
	fmt.Printf("measure bytes:   %d logical, %d on disk, %d resident\n",
		stg.LogicalBytes, stg.OnDiskBytes, stg.ResidentBytes)
	fmt.Printf("paged columns:   %d paged, %d resident\n", stg.PagedColumns, stg.ResidentColumns)
	var encs []string
	for i, n := range stg.BlockEncodings {
		if n > 0 {
			encs = append(encs, fmt.Sprintf("%s=%d", grove.BlockEncodingName(i), n))
		}
	}
	if len(encs) > 0 {
		fmt.Printf("value blocks:    %s\n", strings.Join(encs, " "))
	}
	if p := stg.Pool; p.Hits+p.Misses > 0 || p.BudgetBytes > 0 {
		fmt.Printf("buffer pool:     %d hits, %d misses, %d evictions, %d/%d bytes\n",
			p.Hits, p.Misses, p.Evictions, p.ResidentBytes, p.BudgetBytes)
	}
}

func match(st *grove.Store, nodes []string, limit int) {
	res, err := st.MatchPath(nodes...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("matched %d records (plan: %d bitmap columns)\n",
		res.NumRecords(), res.Plan.NumBitmaps())
	n := 0
	res.Answer.Each(func(rec uint32) bool {
		fmt.Printf("  record %d\n", rec)
		n++
		return n < limit
	})
}

func aggregate(st *grove.Store, fname string, nodes []string, limit int) {
	f, ok := aggByName(fname)
	if !ok {
		fatal(fmt.Errorf("unknown aggregate function %q (SUM|MIN|MAX|COUNT)", fname))
	}
	res, err := st.AggregatePath(f, nodes...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("matched %d records along %d path(s)\n", len(res.RecordIDs), len(res.Paths))
	for i, rec := range res.RecordIDs {
		if i >= limit {
			fmt.Printf("  ... %d more\n", len(res.RecordIDs)-limit)
			break
		}
		v := res.Values[0][i]
		if math.IsNaN(v) {
			fmt.Printf("  record %d: NULL\n", rec)
		} else {
			fmt.Printf("  record %d: %s = %.3f\n", rec, f.Name, v)
		}
	}
}

func aggByName(name string) (grove.AggFunc, bool) {
	switch strings.ToUpper(name) {
	case "SUM":
		return grove.Sum, true
	case "MIN":
		return grove.Min, true
	case "MAX":
		return grove.Max, true
	case "COUNT":
		return grove.Count, true
	}
	return grove.AggFunc{}, false
}

func average(st *grove.Store, nodes []string, limit int) {
	ids, avgs, err := st.AveragePath(nodes...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("matched %d records\n", len(ids))
	for i, rec := range ids {
		if i >= limit {
			fmt.Printf("  ... %d more\n", len(ids)-limit)
			break
		}
		if math.IsNaN(avgs[i]) {
			fmt.Printf("  record %d: NULL\n", rec)
		} else {
			fmt.Printf("  record %d: AVG = %.3f\n", rec, avgs[i])
		}
	}
}

func summary(st *grove.Store, fname string, nodes []string) {
	f, ok := aggByName(fname)
	if !ok {
		fatal(fmt.Errorf("unknown aggregate function %q", fname))
	}
	res, err := st.AggregatePath(f, nodes...)
	if err != nil {
		fatal(err)
	}
	s := grove.Summarize(res.FoldAcrossPaths())
	fmt.Printf("records: %d\n", s.Count)
	fmt.Printf("%s sum=%.3f mean=%.3f stddev=%.3f min=%.3f max=%.3f\n",
		f.Name, s.Sum, s.Mean, s.StdDev, s.Min, s.Max)
}

func advise(st *grove.Store, workloadFile, kStr string) {
	var k int
	if _, err := fmt.Sscanf(kStr, "%d", &k); err != nil || k <= 0 {
		fatal(fmt.Errorf("bad budget %q", kStr))
	}
	f, err := os.Open(workloadFile)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	workload, err := grove.ParseWorkload(f)
	if err != nil {
		fatal(err)
	}
	rep, err := st.AdviseGraphViews(workload, k, grove.AdvisorOptions{})
	if err != nil {
		fatal(err)
	}
	if err := st.RenderAdvice(os.Stdout, rep); err != nil {
		fatal(err)
	}
}

func explain(st *grove.Store, nodes []string) {
	ex, err := st.Explain(grove.PathOf(nodes...).ToGraph())
	if err != nil {
		fatal(err)
	}
	fmt.Print(ex.String())
}

func analyze(st *grove.Store, nodes []string) {
	a, err := st.ExplainAnalyze(grove.PathOf(nodes...).ToGraph())
	if err != nil {
		fatal(err)
	}
	fmt.Print(a.String())
}

// dumpMetrics executes any statements given (traced and metered), then dumps
// the metrics registry in Prometheus text format.
func dumpMetrics(st *grove.Store, statements []string, limit int) {
	st.EnableTracing(0)
	reg := st.Metrics()
	for _, text := range statements {
		textQuery(st, text, limit)
	}
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		fatal(err)
	}
}

// slowQueries executes any statements given with the slow-query log capturing
// everything (threshold 0), then dumps the log as JSONL, newest first — the
// same shape /debug/slow serves.
func slowQueries(st *grove.Store, statements []string, limit int) {
	st.EnableSlowQueryLog(0, 0)
	for _, text := range statements {
		textQuery(st, text, limit)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, q := range st.SlowQueries() {
		if err := enc.Encode(q); err != nil {
			fatal(err)
		}
	}
}

func textQuery(st *grove.Store, text string, limit int) {
	res, err := st.Query(text)
	if err != nil {
		fatal(err)
	}
	if res.IDs != nil {
		fmt.Printf("matched %d records\n", res.IDs.Cardinality())
		n := 0
		res.IDs.Each(func(rec uint32) bool {
			fmt.Printf("  record %d\n", rec)
			n++
			return n < limit
		})
		return
	}
	agg := res.Agg
	fmt.Printf("matched %d records along %d path(s)\n", len(agg.RecordIDs), len(agg.Paths))
	for i, rec := range agg.RecordIDs {
		if i >= limit {
			fmt.Printf("  ... %d more\n", len(agg.RecordIDs)-limit)
			break
		}
		v := agg.Values[0][i]
		if math.IsNaN(v) {
			fmt.Printf("  record %d: NULL\n", rec)
		} else {
			fmt.Printf("  record %d: %.3f\n", rec, v)
		}
	}
}

func tagRecord(st *grove.Store, dir, recStr, key, value string) {
	var rec uint32
	if _, err := fmt.Sscanf(recStr, "%d", &rec); err != nil {
		fatal(fmt.Errorf("bad record id %q", recStr))
	}
	if err := st.Tag(rec, key, value); err != nil {
		fatal(err)
	}
	if err := st.Save(dir); err != nil {
		fatal(err)
	}
	fmt.Printf("tagged record %d with %s=%s\n", rec, key, value)
}

func listViews(st *grove.Store) {
	fmt.Println("graph views:")
	for _, v := range st.ViewNames() {
		fmt.Printf("  %s\n", v)
	}
	fmt.Println("aggregate views:")
	for _, v := range st.AggViewNames() {
		fmt.Printf("  %s\n", v)
	}
}

func addView(st *grove.Store, dir, name string, nodes []string) {
	if err := st.MaterializeView(name, grove.PathOf(nodes...).ToGraph()); err != nil {
		fatal(err)
	}
	if err := st.Save(dir); err != nil {
		fatal(err)
	}
	fmt.Printf("materialized graph view %s over path %v\n", name, nodes)
}

func addAggView(st *grove.Store, dir, name, fname string, nodes []string) {
	f, ok := aggByName(fname)
	if !ok {
		fatal(fmt.Errorf("unknown aggregate function %q", fname))
	}
	if err := st.MaterializeAggViewPath(name, f, nodes...); err != nil {
		fatal(err)
	}
	if err := st.Save(dir); err != nil {
		fatal(err)
	}
	fmt.Printf("materialized aggregate view %s (%s) over path %v\n", name, f.Name, nodes)
}
