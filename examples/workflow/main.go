// Workflow-management scenario (paper §1: WMS as a graph-record generator):
// each process instance is a graph record whose nodes are workflow states —
// carrying per-state processing times as NODE measures — and whose edges are
// transitions carrying hand-off delays. This example exercises node-measure
// aggregation and open-ended paths: [D,E,G) semantics exclude endpoint
// states from the analysis.
//
// Run with: go run ./examples/workflow
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"grove"
)

// The order-fulfilment workflow: Received → Validated → {Approved|Rejected};
// Approved → Packed → Shipped; some orders loop Validated→Received (resubmit)
// — a cycle the loader flattens to Received#2 aliases automatically.
func main() {
	rng := rand.New(rand.NewSource(99))
	st := grove.Open()

	const numInstances = 4000
	rejected := 0
	for i := 0; i < numInstances; i++ {
		rec := grove.NewRecord()
		resubmit := rng.Intn(10) == 0
		reject := rng.Intn(5) == 0

		states := []string{"Received", "Validated"}
		if resubmit {
			states = append(states, "Received", "Validated") // cycle: flattened on load
		}
		if reject {
			states = append(states, "Rejected")
			rejected++
		} else {
			states = append(states, "Approved", "Packed", "Shipped")
		}
		// Transition delays (edge measures) and per-state processing times
		// (node measures).
		occ := map[string]int{}
		alias := func(s string) string {
			occ[s]++
			if occ[s] == 1 {
				return s
			}
			return fmt.Sprintf("%s#%d", s, occ[s])
		}
		prev := alias(states[0])
		if err := rec.SetNode(prev, 0.1+rng.Float64()); err != nil {
			log.Fatal(err)
		}
		for _, raw := range states[1:] {
			cur := alias(raw)
			if err := rec.SetEdge(prev, cur, 0.5+rng.Float64()*2); err != nil {
				log.Fatal(err)
			}
			if err := rec.SetNode(cur, 0.1+rng.Float64()*3); err != nil {
				log.Fatal(err)
			}
			prev = cur
		}
		st.Add(rec)
	}
	st.Optimize()
	fmt.Printf("loaded %d process instances (%d rejected) over %d distinct states/transitions\n\n",
		st.NumRecords(), rejected, st.NumEdges())

	// How many instances went through the happy path?
	happy, err := st.MatchPath("Received", "Validated", "Approved", "Packed", "Shipped")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instances completing the happy path: %d\n", happy.NumRecords())

	// End-to-end latency per instance: closed path ⇒ node processing times
	// of every state PLUS transition delays.
	e2e, err := st.AggregatePath(grove.Sum, "Received", "Validated", "Approved", "Packed", "Shipped")
	if err != nil {
		log.Fatal(err)
	}
	all := grove.Summarize(e2e.FoldAcrossPaths())
	fmt.Printf("end-to-end latency: mean %.2fh, σ %.2fh, max %.2fh over %d instances\n",
		all.Mean, all.StdDev, all.Max, all.Count)

	// Open-ended analysis (§3.3's interval semantics): time strictly INSIDE
	// approval→shipping. The open path (Approved,Packed,Shipped) excludes
	// the Approved and Shipped processing times; the closed variant includes
	// them.
	open, err := st.AggregateAlong(grove.Sum, grove.OpenPath("Approved", "Packed", "Shipped"), "")
	if err != nil {
		log.Fatal(err)
	}
	closed, err := st.AggregatePath(grove.Sum, "Approved", "Packed", "Shipped")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approval→shipping: open-path mean %.2fh vs closed-path mean %.2fh\n",
		grove.Summarize(open.FoldAcrossPaths()).Mean,
		grove.Summarize(closed.FoldAcrossPaths()).Mean)

	// Which resubmitted instances (flattened aliases!) still shipped?
	resub, err := st.MatchPath("Validated", "Received#2")
	if err != nil {
		log.Fatal(err)
	}
	shipped, err := st.MatchPath("Packed", "Shipped")
	if err != nil {
		log.Fatal(err)
	}
	both := resub.Answer.And(shipped.Answer)
	fmt.Printf("resubmitted instances that eventually shipped: %d of %d\n",
		both.Cardinality(), resub.NumRecords())

	// Longest single processing bottleneck along the happy path per instance.
	bottleneck, err := st.AggregatePath(grove.Max, "Received", "Validated", "Approved", "Packed", "Shipped")
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for _, v := range bottleneck.FoldAcrossPaths() {
		if !math.IsNaN(v) && v > worst {
			worst = v
		}
	}
	fmt.Printf("worst single state/transition time on the happy path: %.2fh\n", worst)
}
