// Quickstart: the paper's running example (Fig. 2 / Table 1) end to end —
// load three small graph records, run the §3.4 path-aggregation query,
// materialize the Table 1 views and watch the query plan shrink.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"grove"
)

func main() {
	st := grove.Open()

	// The three records of Fig. 2. Edge numbering from the figure:
	// e1=(A,B) e2=(A,C) e3=(C,E) e4=(A,D) e5=(D,E) e6=(E,F) e7=(F,G).
	type leg struct {
		from, to string
		m        float64
	}
	records := [][]leg{
		{{"A", "B", 3}, {"A", "C", 4}, {"C", "E", 2}, {"A", "D", 1}, {"D", "E", 2}},
		{{"A", "C", 1}, {"C", "E", 2}, {"A", "D", 2}, {"D", "E", 1}, {"E", "F", 4}, {"F", "G", 1}},
		{{"A", "D", 5}, {"D", "E", 4}, {"E", "F", 3}, {"F", "G", 1}},
	}
	for i, legs := range records {
		rec := grove.NewRecord()
		for _, l := range legs {
			if err := rec.SetEdge(l.from, l.to, l.m); err != nil {
				log.Fatal(err)
			}
		}
		id := st.Add(rec)
		fmt.Printf("loaded record %d as id %d (%d edges)\n", i+1, id, len(legs))
	}

	// §3.4: SUM along path (A,C,E,F) — only record 2 contains it, total 7.
	agg, err := st.AggregatePath(grove.Sum, "A", "C", "E", "F")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSUM(A,C,E,F): %d matching record(s)\n", len(agg.RecordIDs))
	for i, rec := range agg.RecordIDs {
		fmt.Printf("  record id %d: total = %.0f\n", rec, agg.Values[0][i])
	}

	// Materialize the two views of Table 1: graph view bv1 over {e1..e4}
	// and aggregate view p1 = [e6,e7] with SUM.
	bv1 := grove.NewGraph()
	bv1.AddEdge("A", "B")
	bv1.AddEdge("A", "C")
	bv1.AddEdge("C", "E")
	bv1.AddEdge("A", "D")
	if err := st.MaterializeView("bv1", bv1); err != nil {
		log.Fatal(err)
	}
	if err := st.MaterializeAggViewPath("p1", grove.Sum, "E", "F", "G"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaterialized views: %v + aggregate %v\n", st.ViewNames(), st.AggViewNames())

	// A query covered by bv1 now fetches ONE bitmap instead of four.
	st.ResetIOStats()
	res, err := st.Match(bv1)
	if err != nil {
		log.Fatal(err)
	}
	stats := st.IOStatsSnapshot()
	fmt.Printf("\nquery {e1..e4}: %d record(s), %d bitmap column(s) fetched (4 without the view)\n",
		res.NumRecords(), stats.BitmapColumnsFetched)

	// The aggregate view answers SUM(E,F,G) from the stored column.
	agg2, err := st.AggregatePath(grove.Sum, "E", "F", "G")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSUM(E,F,G) via aggregate view p1:\n")
	for i, rec := range agg2.RecordIDs {
		fmt.Printf("  record id %d: total = %.0f (view segments used: %d)\n",
			rec, agg2.Values[0][i], agg2.SegmentsPerPath[0][0])
	}
}
