// Supply-chain management scenario (paper §2, Fig. 1): delivery traces as
// graph records, the motivating queries Q1–Q3, record tags, region queries,
// and a workload-driven view-advisor session.
//
// Articles flow from production lines (A, B, C) through hubs (D–H) to
// customer end-points (I, K). Each order's trace is one graph record whose
// edges carry TWO measures — delivery time (hours, the default measure) and
// cost (eur, a named measure) — exactly the multi-measure setting of §2:
// Q1 aggregates time, Q2 cost.
//
// Run with: go run ./examples/scm
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"grove"
)

// routes in the Fig. 1 delivery network, as node sequences.
var routes = [][]string{
	{"A", "D", "E", "G", "I"},
	{"A", "D", "E", "G", "K"},
	{"A", "B", "F", "J", "K"},
	{"C", "H", "K"},
}

func main() {
	rng := rand.New(rand.NewSource(7))
	st := grove.Open()

	// Synthesize 5000 orders. Each order ships along 1–2 routes with leg
	// times jittered around a per-leg base; fast-track orders are quicker
	// but cost more. Order type is recorded as a tag.
	const numOrders = 5000
	for i := 0; i < numOrders; i++ {
		rec := grove.NewRecord()
		fastTrack := rng.Intn(4) == 0
		for _, route := range pickRoutes(rng) {
			for j := 0; j+1 < len(route); j++ {
				baseTime, baseCost := 2.0+float64(j), 40.0
				if fastTrack {
					baseTime *= 0.6
					baseCost *= 1.8
				}
				from, to := route[j], route[j+1]
				if err := rec.SetEdge(from, to, baseTime+rng.Float64()); err != nil {
					log.Fatal(err)
				}
				if err := rec.SetEdgeNamed(from, to, "cost", baseCost+10*rng.Float64()); err != nil {
					log.Fatal(err)
				}
			}
		}
		id := st.Add(rec)
		orderType := "regular"
		if fastTrack {
			orderType = "fast-track"
		}
		if err := st.Tag(id, "type", orderType); err != nil {
			log.Fatal(err)
		}
	}
	st.Optimize()
	fmt.Printf("loaded %d order traces over %d distinct delivery legs (measures: time + %v)\n\n",
		st.NumRecords(), st.NumEdges(), st.MeasureNames())

	// Q1: delivery time for all articles shipped via path [A,D,E,G,I].
	q1, err := st.AggregatePath(grove.Sum, "A", "D", "E", "G", "I")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1: %d orders used route A→D→E→G→I; avg delivery time %.2fh\n",
		len(q1.RecordIDs), mean(q1.Values[0]))

	// Q2: delivery COST on the leased legs [C,H] and [F,J,K].
	costCH, err := st.AggregatePathMeasure(grove.Sum, "cost", "C", "H")
	if err != nil {
		log.Fatal(err)
	}
	costFJK, err := st.AggregatePathMeasure(grove.Sum, "cost", "F", "J", "K")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2: leased-route cost: [C,H] total %.0feur over %d orders; [F,J,K] total %.0feur over %d orders\n",
		total(costCH.Values[0]), len(costCH.RecordIDs),
		total(costFJK.Values[0]), len(costFJK.RecordIDs))

	// Q3: longest leg delay from a production line to end-point I via the
	// region-2 hubs. Region 2 is the hub corridor D→E→G; PathsThrough gives
	// the §3.3 composite path through it.
	full := grove.NewGraph()
	for _, r := range routes {
		for j := 0; j+1 < len(r); j++ {
			full.AddEdge(r[j], r[j+1])
		}
	}
	region2 := grove.NewGraph()
	region2.AddEdge("D", "E")
	region2.AddEdge("E", "G")
	through, err := grove.PathsThrough(full, region2, false)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for _, p := range through {
		if p.End() != "I" {
			continue
		}
		q3, err := st.AggregatePath(grove.Max, p.Nodes...)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range q3.FoldAcrossPaths() {
			if !math.IsNaN(v) && v > worst {
				worst = v
			}
		}
	}
	fmt.Printf("Q3: longest single-leg delay to I via region-2 hubs: %.2fh\n", worst)

	// Tag-sliced analysis: fast-track orders on the main corridor.
	fast, err := st.MatchTagged(grove.PathOf("A", "D", "E", "G").ToGraph(),
		map[string]string{"type": "fast-track"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast-track orders via A→D→E→G: %d\n\n", fast.Cardinality())

	// View advisor session: the analysts' dashboard re-runs the four route
	// aggregations continuously — let the advisor pick aggregate views.
	workload := make([]*grove.Graph, 0, len(routes))
	for _, r := range routes {
		workload = append(workload, grove.PathOf(r...).ToGraph())
	}
	st.ResetIOStats()
	runDashboard(st, workload)
	before := st.IOStatsSnapshot()

	names, err := st.MaterializeAggViews(workload, grove.Sum, 4, grove.AdvisorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	st.ResetIOStats()
	runDashboard(st, workload)
	after := st.IOStatsSnapshot()

	fmt.Printf("advisor materialized %d aggregate views: %v\n", len(names), names)
	fmt.Printf("dashboard workload columns fetched: %d → %d (%.0f%% fewer)\n",
		before.ColumnsFetched(), after.ColumnsFetched(),
		100*(1-float64(after.ColumnsFetched())/float64(before.ColumnsFetched())))
}

func pickRoutes(rng *rand.Rand) [][]string {
	first := routes[rng.Intn(len(routes))]
	if rng.Intn(3) == 0 {
		second := routes[rng.Intn(len(routes))]
		return [][]string{first, second}
	}
	return [][]string{first}
}

func runDashboard(st *grove.Store, workload []*grove.Graph) {
	for _, g := range workload {
		if _, err := st.Aggregate(g, grove.Sum); err != nil {
			log.Fatal(err)
		}
	}
}

func mean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func total(vals []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		if !math.IsNaN(v) {
			sum += v
		}
	}
	return sum
}
