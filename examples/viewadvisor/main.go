// View-advisor walkthrough: watch the §5 pipeline operate — candidate
// generation (exhaustive closure vs a-priori), greedy set-cover selection
// under increasing budgets, and the query-time rewriting payoff.
//
// Run with: go run ./examples/viewadvisor
package main

import (
	"fmt"
	"log"

	"grove"
	"grove/synth"
)

func main() {
	// NY-like dataset and a skewed (Zipf) analyst workload.
	ds, err := synth.NY(synth.Config{Records: 10000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Store
	queries := ds.ZipfQueries(100, 25, 8, false)
	fmt.Printf("dataset: %s\nworkload: 100 Zipf-drawn graph queries (8 edges each)\n\n", ds.Describe())

	// Budget sweep: cost of the whole workload in bitmap-columns fetched.
	fmt.Println("budget  views  bitmapCols  reduction")
	base := workloadCost(st, queries)
	for _, k := range []int{0, 5, 10, 25, 50, 100} {
		st.DropAllViews()
		var names []string
		if k > 0 {
			names, err = st.MaterializeGraphViews(queries, k, grove.AdvisorOptions{})
			if err != nil {
				log.Fatal(err)
			}
		}
		cost := workloadCost(st, queries)
		fmt.Printf("%5d  %5d  %10d  %8.1f%%\n",
			k, len(names), cost, 100*(1-float64(cost)/float64(base)))
	}

	// The a-priori candidate generator trades completeness for speed on
	// heavily overlapping workloads; higher minimum support admits fewer
	// candidates and therefore fewer materialized views.
	fmt.Println("\nminSup  views(k=50)")
	for _, minSup := range []int{0, 2, 5, 10, 20} {
		st.DropAllViews()
		names, err := st.MaterializeGraphViews(queries, 50, grove.AdvisorOptions{MinSup: minSup})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %d\n", minSup, len(names))
	}
}

func workloadCost(st *grove.Store, queries []*grove.Graph) int {
	st.ResetIOStats()
	for _, q := range queries {
		if _, err := st.Match(q); err != nil {
			log.Fatal(err)
		}
	}
	return st.IOStatsSnapshot().BitmapColumnsFetched
}
