// Network-monitoring scenario (paper §7.1, GNU dataset): per-flow traffic
// traces over a P2P overlay as graph records, with link-utilization analysis
// across subnets.
//
// Each record is the set of overlay links one flow crossed, measured in MB
// transferred. The administrator asks: which flows crossed a given corridor,
// what was the per-flow byte total along it, and which corridor link was the
// hottest?
//
// Run with: go run ./examples/netmon
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"grove"
	"grove/synth"
)

func main() {
	// Build a GNU-like flow dataset with the library's public synthesizer —
	// the same substrate the §7 experiments use.
	ds, err := synth.GNU(synth.Config{Records: 4000, MinEdges: 20, MaxEdges: 60, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Store
	fmt.Printf("loaded %d flow traces over %d distinct overlay links\n\n",
		st.NumRecords(), st.NumEdges())

	// Pick a frequently-used corridor from the walk pool.
	corridor := ds.QueryPath(3)
	fmt.Printf("corridor under investigation: %v\n", corridor)

	// Which flows crossed the whole corridor?
	res, err := st.MatchPath(corridor...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flows crossing the full corridor: %d\n", res.NumRecords())

	// Total MB per flow along the corridor, and the top-3 heaviest flows.
	agg, err := st.AggregatePath(grove.Sum, corridor...)
	if err != nil {
		log.Fatal(err)
	}
	type flow struct {
		id uint32
		mb float64
	}
	var flows []flow
	for i, id := range agg.RecordIDs {
		if v := agg.Values[0][i]; !math.IsNaN(v) {
			flows = append(flows, flow{id: id, mb: v})
		}
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].mb > flows[j].mb })
	fmt.Println("heaviest corridor flows:")
	for i, f := range flows {
		if i >= 3 {
			break
		}
		fmt.Printf("  flow %d: %.1f MB\n", f.id, f.mb)
	}

	// Hottest single link of the corridor (MAX leg per flow, max over flows).
	hot, err := st.AggregatePath(grove.Max, corridor...)
	if err != nil {
		log.Fatal(err)
	}
	peak := 0.0
	for _, v := range hot.FoldAcrossPaths() {
		if !math.IsNaN(v) && v > peak {
			peak = v
		}
	}
	fmt.Printf("peak per-flow transfer on any corridor link: %.1f MB\n\n", peak)

	// Utilization report benefits from an aggregate view on the corridor:
	// the nightly report re-runs the SUM for every corridor in the watch
	// list, so materialize and compare I/O.
	st.ResetIOStats()
	if _, err := st.AggregatePath(grove.Sum, corridor...); err != nil {
		log.Fatal(err)
	}
	before := st.IOStatsSnapshot().ColumnsFetched()

	if err := st.MaterializeAggViewPath("corridor", grove.Sum, corridor...); err != nil {
		log.Fatal(err)
	}
	st.ResetIOStats()
	if _, err := st.AggregatePath(grove.Sum, corridor...); err != nil {
		log.Fatal(err)
	}
	after := st.IOStatsSnapshot().ColumnsFetched()
	fmt.Printf("corridor SUM I/O with aggregate view: %d → %d columns fetched\n", before, after)
}
