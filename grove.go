// Package grove is a storage and analytics engine for massive collections of
// small graph records, reproducing "Graph Analytics on Massive Collections
// of Small Graphs" (Bleco & Kotidis, EDBT 2014).
//
// A grove Store keeps every graph record flattened into a column-oriented
// master relation: one measure column and one compressed bitmap column per
// named edge. Graph queries — themselves graphs — are answered by ANDing
// bitmap columns; path-aggregation queries fold measures along the maximal
// paths of the query graph. Materialized graph views (precomputed bitmap
// conjunctions) and aggregate graph views (pre-aggregated path measures) are
// selected with a greedy set-cover advisor and transparently reused by the
// query rewriter.
//
// Quick start:
//
//	st := grove.Open()
//	rec := grove.NewRecord()
//	rec.SetEdge("A", "D", 3.5) // shipping leg A→D took 3.5h
//	st.Add(rec)
//
//	res, _ := st.MatchPath("A", "D")      // records routed via A→D
//	agg, _ := st.AggregatePath(grove.Sum, "A", "D", "E") // total time per record
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package grove

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"grove/internal/bitmap"
	"grove/internal/colstore"
	"grove/internal/fsio"
	"grove/internal/gpath"
	"grove/internal/graph"
	"grove/internal/obs"
	"grove/internal/query"
	"grove/internal/shard"
	"grove/internal/view"
)

// Re-exported building blocks. Aliases keep the public API a single import
// while the implementation stays in internal packages.
type (
	// Record is one graph record: a directed graph whose nodes and edges
	// carry measures.
	Record = graph.Record
	// Graph is a bare directed graph, used as a query body.
	Graph = graph.Graph
	// EdgeKey names a structural element; nodes are the self-edge [X,X].
	EdgeKey = graph.EdgeKey
	// Path is an (optionally open-ended) node sequence.
	Path = gpath.Path
	// AggFunc is a distributive aggregate function for path aggregation.
	AggFunc = query.AggFunc
	// Result is a graph query answer.
	Result = query.Result
	// AggResult is a path-aggregation answer.
	AggResult = query.AggResult
	// ScalarAggResult is the answer of a scalar path aggregation — a single
	// fold across every matching record, with block-skipping statistics.
	ScalarAggResult = query.ScalarAggResult
	// StorageStats is the storage-residency snapshot of the measure columns:
	// logical vs. on-disk vs. resident bytes, block encoding mix, and buffer
	// pool counters.
	StorageStats = colstore.StorageStats
	// IOStats is the I/O accounting snapshot of the underlying column store.
	IOStats = colstore.Stats
	// Bitmap is a compressed record-id set.
	Bitmap = bitmap.Bitmap
)

// Aggregate functions.
var (
	Sum   = query.Sum
	Min   = query.Min
	Max   = query.Max
	Count = query.Count
)

// NewRecord returns an empty graph record.
func NewRecord() *Record { return graph.NewRecord() }

// NewGraph returns an empty query graph.
func NewGraph() *Graph { return graph.NewGraph() }

// PathOf builds a closed path over the given nodes.
func PathOf(nodes ...string) Path { return gpath.Closed(nodes...) }

// OpenPath builds a fully open path (endpoint node measures excluded).
func OpenPath(nodes ...string) Path { return gpath.Open(nodes...) }

// FlattenSequence converts a visit sequence with per-leg measures into an
// acyclic record (revisited nodes get occurrence aliases).
func FlattenSequence(stops []string, legMeasures []float64) (*Record, error) {
	return graph.FlattenSequence(stops, legMeasures)
}

// Store is a collection of graph records with bitmap indexes and
// materialized graph views. Queries and mutations may run concurrently:
// each shard's relation takes its write lock inside every mutator and
// queries hold its read lock for their whole execution, so answers are
// always consistent with a single store version. For parallel batches use
// ExecuteBatch / AggregateBatch (see DESIGN.md, "Concurrency model").
//
// A store opened with Open has one shard; NewSharded partitions the records
// across N shards so writes on different shards proceed concurrently and
// every query scatter-gathers across the shards in parallel (DESIGN.md §12).
// Answers are bit-identical regardless of the shard count.
type Store struct {
	coord *shard.Coordinator

	// rel and eng are shard 0's relation and engine — the whole store when
	// NumShards() == 1, and the plan/advisor representative otherwise
	// (shards share the schema and views, so shard 0's plans stand for all).
	rel *colstore.Relation
	reg *graph.Registry
	eng *query.Engine

	// metrics is created lazily by Metrics (observe.go); nil until then, and
	// the query path pays nothing while it is.
	metrics *MetricsRegistry

	// rec is the active workload recorder (record.go); nil unless recording
	// is on, and the query path pays one atomic load while it is.
	rec atomic.Pointer[obs.WorkloadRecorder]
}

// newStore wraps a coordinator as a Store.
func newStore(c *shard.Coordinator) *Store {
	return &Store{coord: c, rel: c.Unit(0).Rel, reg: c.Registry(), eng: c.Unit(0).Eng}
}

// Option configures Open.
type Option func(*options)

type options struct {
	partitionWidth int
}

// WithPartitionWidth overrides the vertical partition width (the maximum
// number of edge columns per sub-relation; default 1000).
func WithPartitionWidth(w int) Option {
	return func(o *options) { o.partitionWidth = w }
}

// Open creates an empty single-shard store.
func Open(opts ...Option) *Store {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return newStore(shard.New(1, o.partitionWidth))
}

// NewSharded creates an empty store partitioned into n shards (n < 1 selects
// runtime.GOMAXPROCS(0)). Records are placed round-robin, so the global
// record ids a sequentially-loaded store assigns do not depend on n, and
// every query answer is bit-identical to a single-shard store's. n = 1 is
// exactly Open.
func NewSharded(n int, opts ...Option) *Store {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return newStore(shard.New(n, o.partitionWidth))
}

// NumShards returns the store's shard count (1 unless built by NewSharded).
func (s *Store) NumShards() int { return s.coord.NumShards() }

// Add appends a record, returning its record id. Cyclic records are
// flattened to DAGs first. Concurrent Adds landing on different shards of a
// sharded store proceed in parallel.
func (s *Store) Add(rec *Record) uint32 {
	return s.coord.Add(rec)
}

// GetRecord reconstructs a stored record from the master relation's columns:
// its structural elements from the bitmap columns and its measures (default
// and named) from the measure columns. Aliased nodes from DAG flattening
// (A#2) appear under their aliases.
func (s *Store) GetRecord(id uint32) (*Record, error) {
	u, local, err := s.coord.Locate(id)
	if err != nil {
		return nil, fmt.Errorf("grove: record %d out of range (have %d)", id, s.coord.NumRecords())
	}
	rel := u.Rel
	rel.BeginRead() //grovevet:ignore lockorder paged columns may fault value blocks from disk during Get; that I/O happens under the read lock by design (readers proceed, only writers wait) and the reconstruction must see one consistent cut
	defer rel.EndRead()
	if int(local) >= rel.NumRecords() {
		return nil, fmt.Errorf("grove: record %d out of range (have %d)", id, s.coord.NumRecords())
	}
	rec := graph.NewRecord()
	names := rel.MeasureNames()
	for eid := colstore.EdgeID(0); int(eid) < s.reg.Len(); eid++ {
		b := rel.EdgeBitmap(eid)
		if b == nil || !b.Contains(local) {
			continue
		}
		k, _ := s.reg.Key(eid)
		if col := rel.MeasureColumn(eid); col != nil {
			if v, ok := col.Get(local); ok {
				if err := rec.SetElement(k, v); err != nil {
					return nil, err
				}
			} else {
				rec.AddBareElement(k)
			}
		} else {
			rec.AddBareElement(k)
		}
		for _, name := range names {
			if col := rel.MeasureColumnNamed(eid, name); col != nil {
				if v, ok := col.Get(local); ok {
					if err := rec.SetElementNamed(k, name, v); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return rec, nil
}

// WriteDOT renders a graph (and optionally a record's measures) in Graphviz
// DOT format.
func WriteDOT(w io.Writer, name string, g *Graph, rec *Record) error {
	return graph.WriteDOT(w, name, g, rec)
}

// Delete soft-deletes a record: it disappears from every subsequent query
// answer (the columns keep its values; the record id is masked out). Returns
// whether the record was live.
func (s *Store) Delete(rec uint32) (bool, error) { return s.coord.Delete(rec) }

// Undelete restores a soft-deleted record.
func (s *Store) Undelete(rec uint32) bool { return s.coord.Undelete(rec) }

// NumDeleted returns the number of soft-deleted records across all shards.
func (s *Store) NumDeleted() int { return s.coord.NumDeleted() }

// NumRecords returns the number of stored records across all shards.
func (s *Store) NumRecords() int { return s.coord.NumRecords() }

// NumEdges returns the size of the edge-id universe seen so far.
func (s *Store) NumEdges() int { return s.reg.Len() }

// SizeBytes returns the in-memory payload size (base columns + views) summed
// across all shards.
func (s *Store) SizeBytes() int64 { return s.coord.SizeBytes() }

// StoreStats summarizes a store, Table 2 style. All counts and sizes
// aggregate across every shard of a sharded store.
type StoreStats struct {
	Records        int
	Deleted        int
	DistinctEdges  int
	TotalMeasures  int64
	MeasureNames   []string
	BaseSizeBytes  int64
	ViewSizeBytes  int64
	GraphViews     int
	AggregateViews int
	Partitions     int
	Shards         int
	TagKeys        []string
	// Storage is the paged-columnar residency breakdown: logical vs.
	// on-disk vs. resident measure bytes, per-encoding block counts, and
	// buffer pool counters, summed across shards.
	Storage StorageStats
}

// Stats returns the store's summary statistics, aggregated across shards.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Records:        s.coord.NumRecords(),
		Deleted:        s.coord.NumDeleted(),
		DistinctEdges:  s.reg.Len(),
		TotalMeasures:  s.coord.TotalMeasures(),
		MeasureNames:   s.coord.MeasureNames(),
		BaseSizeBytes:  s.coord.BaseSizeBytes(),
		ViewSizeBytes:  s.coord.ViewSizeBytes(),
		GraphViews:     len(s.rel.Views()),
		AggregateViews: len(s.rel.AggViews()),
		Partitions:     s.coord.MaxPartitions(),
		Shards:         s.coord.NumShards(),
		TagKeys:        s.coord.TagKeys(),
		Storage:        s.coord.StorageStats(),
	}
}

// StorageStats returns the measure-storage residency snapshot summed across
// shards: how many bytes the columns represent logically, occupy encoded on
// disk, and hold decoded in memory right now, plus the block encoding mix
// and buffer pool hit/miss/eviction counters.
func (s *Store) StorageStats() StorageStats { return s.coord.StorageStats() }

// SetPageCacheBytes bounds the decoded-block buffer pool. The budget is
// split evenly across shards; ≤ 0 removes the bound. Shrinking below current
// residency evicts clock-style on the next block fault. Loaded paged stores
// default to DefaultPageCacheBytes.
func (s *Store) SetPageCacheBytes(n int64) { s.coord.SetPageCacheBytes(n) }

// DefaultPageCacheBytes is the buffer pool budget a freshly loaded paged
// store starts with (split across shards).
const DefaultPageCacheBytes = colstore.DefaultPageCacheBytes

// BlockEncodingName names slot i of StorageStats.BlockEncodings ("raw",
// "xor", "dict", "rle").
func BlockEncodingName(i int) string { return colstore.BlockEncodingName(i) }

// NumBlockEncodings is the number of block encodings (the length of
// StorageStats.BlockEncodings).
const NumBlockEncodings = colstore.NumBlockEncodings

// PageError returns the first sticky page-fault error, if lazily loading any
// value block from the snapshot has failed. Queries that touched a failed
// column already returned that error; this surfaces it for health checks.
func (s *Store) PageError() error { return s.coord.PageError() }

// Close releases the snapshot file handles a loaded store pages value blocks
// from. The store remains usable — columns already resident stay readable,
// and a subsequent block fault reopens its file — so Close is about
// releasing descriptors, not ending the store's life.
func (s *Store) Close() error { return s.coord.Close() }

// Optimize recompresses all bitmap columns on every shard; call after bulk
// loading.
func (s *Store) Optimize() { s.coord.Optimize() }

// SetUseViews toggles view-aware query rewriting (on by default).
func (s *Store) SetUseViews(use bool) { s.coord.SetUseViews(use) }

// SetParallelPaths toggles concurrent per-path aggregation for multi-path
// aggregation queries (off by default). Answers are identical to the
// sequential path; it only engages while query tracing is disabled, since a
// lifecycle trace records per-path phase spans in order.
func (s *Store) SetParallelPaths(on bool) { s.coord.SetParallelPaths(on) }

// EnableResultCache attaches a bounded structural-answer cache to the store
// (capacity ≤ 0 selects a default; a sharded store splits the capacity
// across per-shard caches). A mutation invalidates only the mutated shard's
// slice, so cached answers are always exact. Pass enable=false to detach.
func (s *Store) EnableResultCache(enable bool, capacity int) {
	s.coord.EnableCache(enable, capacity)
}

// Match answers a graph query: the records containing the query graph. On a
// sharded store the query fans out across every shard in parallel and the
// answer is the union of the per-shard answers.
func (s *Store) Match(g *Graph) (*Result, error) {
	return s.MatchContext(context.Background(), g)
}

// MatchContext is Match with cancellation: the engine checks ctx between
// bitmap fetches and abandons the query with ctx's error once cancelled
// (recorded as a "cancelled" span when tracing is on). On a sharded store a
// cancellation promptly abandons every shard's sub-query.
func (s *Store) MatchContext(ctx context.Context, g *Graph) (*Result, error) {
	q := query.NewGraphQuery(g)
	rec := s.rec.Load()
	if rec == nil {
		return s.coord.MatchContext(ctx, q)
	}
	start := time.Now()
	res, err := s.coord.MatchContext(ctx, q)
	s.recordMatch(rec, q, start, res, err)
	return res, err
}

// MatchPath answers a single-path graph query over the given nodes.
func (s *Store) MatchPath(nodes ...string) (*Result, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("grove: a path query needs at least 2 nodes")
	}
	return s.Match(PathOf(nodes...).ToGraph())
}

// ExecuteBatch answers a batch of graph queries, fanning them across a
// worker pool of the given size (workers ≤ 0 selects runtime.NumCPU(); 1
// runs sequentially). Results arrive in query order and are bit-for-bit
// identical to a sequential run; workers share the store's result cache.
// The paper's experiments all evaluate batches of 100 queries — this is
// the parallel path for that shape of workload.
func (s *Store) ExecuteBatch(graphs []*Graph, workers int) ([]*Result, error) {
	results, errs := s.ExecuteBatchContext(context.Background(), graphs, workers)
	if err := firstBatchError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// firstBatchError mirrors the batch executor's error policy: the first
// failing query aborts the batch result, labelled with its index.
func firstBatchError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	return nil
}

// ExecuteBatchContext is ExecuteBatch with cancellation and per-query
// errors: result slot i and error slot i belong to graphs[i]. Queries not
// yet started when ctx is cancelled fail promptly with ctx's error, and a
// panicking query surfaces as its own error while the rest of the batch
// completes.
func (s *Store) ExecuteBatchContext(ctx context.Context, graphs []*Graph, workers int) ([]*Result, []error) {
	queries := make([]*query.GraphQuery, len(graphs))
	for i, g := range graphs {
		queries[i] = query.NewGraphQuery(g)
	}
	rec := s.rec.Load()
	if rec == nil {
		return s.coord.ExecuteGraphBatchContext(ctx, queries, workers)
	}
	start := time.Now()
	results, errs := s.coord.ExecuteGraphBatchContext(ctx, queries, workers)
	s.recordGraphBatch(rec, queries, start, results, errs)
	return results, errs
}

// AggregateBatch answers a batch of path-aggregation queries (f folded along
// every maximal path of each graph) across a worker pool, with the same
// ordering and determinism guarantees as ExecuteBatch.
func (s *Store) AggregateBatch(graphs []*Graph, f AggFunc, workers int) ([]*AggResult, error) {
	results, errs := s.AggregateBatchContext(context.Background(), graphs, f, workers)
	if err := firstBatchError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// AggregateBatchContext is AggregateBatch with cancellation and per-query
// errors, in the manner of ExecuteBatchContext.
func (s *Store) AggregateBatchContext(ctx context.Context, graphs []*Graph, f AggFunc, workers int) ([]*AggResult, []error) {
	queries := make([]*query.PathAggQuery, len(graphs))
	for i, g := range graphs {
		queries[i] = query.NewPathAggQuery(g, f)
	}
	rec := s.rec.Load()
	if rec == nil {
		return s.coord.ExecutePathAggBatchContext(ctx, queries, workers)
	}
	start := time.Now()
	results, errs := s.coord.ExecutePathAggBatchContext(ctx, queries, workers)
	s.recordAggBatch(rec, queries, start, results, errs)
	return results, errs
}

// Aggregate answers a path-aggregation query: it matches g and folds f along
// every maximal path of g for every matching record.
func (s *Store) Aggregate(g *Graph, f AggFunc) (*AggResult, error) {
	return s.AggregateContext(context.Background(), g, f)
}

// AggregateContext is Aggregate with cancellation, checked between bitmap
// fetches and between per-path aggregation chunks.
func (s *Store) AggregateContext(ctx context.Context, g *Graph, f AggFunc) (*AggResult, error) {
	return s.aggregateQuery(ctx, query.NewPathAggQuery(g, f))
}

// aggregateQuery is the funnel every path-aggregation facade goes through, so
// workload recording sees each of them.
func (s *Store) aggregateQuery(ctx context.Context, q *query.PathAggQuery) (*AggResult, error) {
	rec := s.rec.Load()
	if rec == nil {
		return s.coord.AggregateContext(ctx, q)
	}
	start := time.Now()
	res, err := s.coord.AggregateContext(ctx, q)
	s.recordAgg(rec, q, start, res, err)
	return res, err
}

// AggregatePath aggregates f along the single path over the given nodes.
func (s *Store) AggregatePath(f AggFunc, nodes ...string) (*AggResult, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("grove: a path aggregation needs at least 2 nodes")
	}
	return s.Aggregate(PathOf(nodes...).ToGraph(), f)
}

// AggregateMeasure is Aggregate over a named measure — e.g. fold "cost"
// instead of the default measure when records carry several measures per
// element (§3.1).
func (s *Store) AggregateMeasure(g *Graph, f AggFunc, measure string) (*AggResult, error) {
	return s.aggregateQuery(context.Background(), query.NewPathAggQueryOn(g, f, measure))
}

// AggregatePathMeasure aggregates a named measure along a single path.
func (s *Store) AggregatePathMeasure(f AggFunc, measure string, nodes ...string) (*AggResult, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("grove: a path aggregation needs at least 2 nodes")
	}
	return s.AggregateMeasure(PathOf(nodes...).ToGraph(), f, measure)
}

// AggregateAlong aggregates f along one explicit path, honouring open
// endpoints: an open end excludes that endpoint node's own measure (§3.3's
// interval semantics, e.g. (D,E,G) for "from departure at D to arrival at
// G"). measure selects the measure ("" = default).
func (s *Store) AggregateAlong(f AggFunc, p Path, measure string) (*AggResult, error) {
	if len(p.Nodes) < 2 {
		return nil, fmt.Errorf("grove: a path aggregation needs at least 2 nodes")
	}
	return s.aggregateQuery(context.Background(), query.NewPathAggQueryAlong(p, f, measure))
}

// AggregateScalar folds f across every record matching g — the scalar answer
// "what is the MIN/MAX/SUM over all matching records", not the per-record
// rows Aggregate returns. For MIN and MAX over paged columns the engine
// answers with a zone-map block-skipping scan that reads only blocks whose
// [min,max] range could still change the answer; the result is bit-identical
// to folding Aggregate's rows. Scalar queries are an execution strategy, not
// a distinct workload shape, so they bypass the workload recorder.
func (s *Store) AggregateScalar(g *Graph, f AggFunc) (*ScalarAggResult, error) {
	return s.AggregateScalarContext(context.Background(), g, f)
}

// AggregateScalarContext is AggregateScalar with cancellation.
func (s *Store) AggregateScalarContext(ctx context.Context, g *Graph, f AggFunc) (*ScalarAggResult, error) {
	return s.coord.AggregateScalarContext(ctx, query.NewPathAggQuery(g, f))
}

// AggregateScalarMeasure is AggregateScalar over a named measure.
func (s *Store) AggregateScalarMeasure(g *Graph, f AggFunc, measure string) (*ScalarAggResult, error) {
	return s.coord.AggregateScalarContext(context.Background(), query.NewPathAggQueryOn(g, f, measure))
}

// AggregateScalarPath folds f along the single path over the given nodes
// into one scalar.
func (s *Store) AggregateScalarPath(f AggFunc, nodes ...string) (*ScalarAggResult, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("grove: a path aggregation needs at least 2 nodes")
	}
	return s.AggregateScalar(PathOf(nodes...).ToGraph(), f)
}

// MeasureNames lists the named measures stored across all shards (the
// default measure is always present and unnamed).
func (s *Store) MeasureNames() []string { return s.coord.MeasureNames() }

// Expr is a boolean combination of graph queries.
type Expr = query.Expr

// Q wraps a query graph as an expression leaf.
func Q(g *Graph) Expr { return query.Leaf{Q: query.NewGraphQuery(g)} }

// QPath wraps a path query as an expression leaf.
func QPath(nodes ...string) Expr { return Q(PathOf(nodes...).ToGraph()) }

// And intersects the answer sets of the operands.
func And(operands ...Expr) Expr { return query.And{Operands: operands} }

// Or unions the answer sets of the operands.
func Or(operands ...Expr) Expr { return query.Or{Operands: operands} }

// AndNot returns records matching a but not b.
func AndNot(a, b Expr) Expr { return query.Diff{A: a, B: b} }

// Eval evaluates a boolean combination of graph queries, returning the
// matching record ids. Boolean operators distribute over the disjoint shard
// partition, so a sharded store evaluates the whole expression on every
// shard in parallel and unions the answers.
func (s *Store) Eval(e Expr) (*Bitmap, error) {
	rec := s.rec.Load()
	if rec == nil {
		return s.coord.EvalExprContext(context.Background(), e)
	}
	start := time.Now()
	ids, err := s.coord.EvalExprContext(context.Background(), e)
	s.recordEval(rec, e, start, ids, err)
	return ids, err
}

// LeafGraphs returns the query graphs at the leaves of a boolean expression,
// in syntactic order — the unit a view-advisor workload is built from.
func LeafGraphs(e Expr) []*Graph {
	switch x := e.(type) {
	case query.Leaf:
		return []*Graph{x.Q.G}
	case query.And:
		var out []*Graph
		for _, op := range x.Operands {
			out = append(out, LeafGraphs(op)...)
		}
		return out
	case query.Or:
		var out []*Graph
		for _, op := range x.Operands {
			out = append(out, LeafGraphs(op)...)
		}
		return out
	case query.Diff:
		return append(LeafGraphs(x.A), LeafGraphs(x.B)...)
	default:
		return nil
	}
}

// ParseWorkload parses a newline-separated list of query statements (the
// text query language; '#' starts a comment line) into the query graphs of a
// view-advisor workload. Aggregation statements contribute their path
// graphs; boolean statements contribute every leaf.
func ParseWorkload(r io.Reader) ([]*Graph, error) {
	var out []*Graph
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		stmt, err := query.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("grove: workload line %d: %w", line, err)
		}
		if stmt.Agg != nil {
			out = append(out, stmt.Agg.G)
		} else {
			out = append(out, LeafGraphs(stmt.Expr)...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Explanation describes a query's execution plan without running it.
type Explanation = query.Explanation

// Explain computes the execution plan (rewriting outcome, bitmap cost,
// partition span) for a graph query without executing it.
func (s *Store) Explain(g *Graph) (Explanation, error) {
	return s.eng.ExplainGraph(g)
}

// QueryResult is the answer of a textual Query: exactly one of IDs (boolean
// structural query) or Agg (path aggregation) is set.
type QueryResult struct {
	IDs *Bitmap
	Agg *AggResult
}

// Query parses and executes one statement of grove's text query language:
//
//	[A,D,E] AND NOT [C,H]      boolean combination of path queries
//	SUM [A,D,E,G,I]            path aggregation (SUM|MIN|MAX|COUNT)
//	MAX<cost> [C,H]            aggregation over a named measure
//
// Keywords are case-insensitive; parentheses group.
func (s *Store) Query(text string) (*QueryResult, error) {
	rec := s.rec.Load()
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	res, err := s.coord.ExecuteStatementContext(context.Background(), text)
	if err != nil {
		if rec != nil {
			s.recordStatement(rec, text, start, nil, err)
		}
		return nil, err
	}
	out := &QueryResult{IDs: res.IDs, Agg: res.Agg}
	if rec != nil {
		s.recordStatement(rec, text, start, out, nil)
	}
	return out, nil
}

// PathsThrough returns the composite path [Src(g),Src(region)) ⋈
// [Src(region),Ter(region)] ⋈ (Ter(region),Ter(g)] — every maximal path of
// the query graph g that traverses the region (§3.3). With visitAll, only
// paths visiting every region node are kept.
func PathsThrough(g, region *Graph, visitAll bool) ([]Path, error) {
	var opts []gpath.RegionOption
	if visitAll {
		opts = append(opts, gpath.VisitAllRegionNodes())
	}
	comp, err := gpath.PathsThrough(g, region, opts...)
	if err != nil {
		return nil, err
	}
	return comp.Paths, nil
}

// Coalesce returns a copy of g with the region's nodes collapsed into a
// single aggregate node (the zoom-out operator motivating aggregate views,
// §2): internal region edges are hidden, boundary edges are redirected.
func Coalesce(g, region *Graph, aggNode string) (*Graph, error) {
	return gpath.Coalesce(g, region, aggNode)
}

// --- record metadata --------------------------------------------------------

// Tag attaches a key=value metadata tag to a record (§3.1: metadata links
// sub-orders, carries order types, etc.). Tags are indexed as bitmap columns,
// so they combine with structural answers at bitmap speed.
func (s *Store) Tag(rec uint32, key, value string) error {
	return s.coord.Tag(rec, key, value)
}

// TaggedWith returns the records tagged key=value, across all shards.
func (s *Store) TaggedWith(key, value string) *Bitmap {
	return s.coord.TaggedWith(key, value)
}

// MatchTagged answers a graph query restricted to records carrying all the
// given tags.
func (s *Store) MatchTagged(g *Graph, tags map[string]string) (*Bitmap, error) {
	res, err := s.Match(g)
	if err != nil {
		return nil, err
	}
	answer := res.Answer
	for k, v := range tags {
		answer = answer.And(s.coord.TaggedWith(k, v))
	}
	return answer, nil
}

// --- materialized views -------------------------------------------------------

// AdvisorOptions tunes view selection.
type AdvisorOptions struct {
	// MinSup ≥ 2 switches candidate generation to the a-priori
	// frequent-itemset formulation with that minimum support; below 2 the
	// exhaustive intersection-closure generator is used.
	MinSup int
}

// AdvisorReport describes a proposed view selection: per-view usage and the
// workload's bitmap cost before/after rewriting.
type AdvisorReport = view.SelectionReport

// AdviseGraphViews runs view selection for the workload WITHOUT
// materializing anything, returning a report of what the advisor would
// build and what it would save.
func (s *Store) AdviseGraphViews(workload []*Graph, k int, opts AdvisorOptions) (AdvisorReport, error) {
	adv := &view.Advisor{Rel: s.rel, Reg: s.reg, MinSup: opts.MinSup}
	selected, err := adv.SelectGraphViews(workload, k)
	if err != nil {
		return AdvisorReport{}, err
	}
	return view.Report(selected, adv.WorkloadEdgeSets(workload)), nil
}

// RenderAdvice writes an AdvisorReport with edge ids resolved back to their
// element names.
func (s *Store) RenderAdvice(w io.Writer, rep AdvisorReport) error {
	return rep.Render(w, func(es view.EdgeSet) string {
		parts := make([]string, 0, len(es))
		for _, id := range es {
			if k, ok := s.reg.Key(id); ok {
				parts = append(parts, k.String())
			}
		}
		return strings.Join(parts, " ")
	})
}

// MaterializeGraphViews selects (greedy set cover over the workload) and
// materializes up to k graph views, returning their names. View selection is
// purely workload-driven, so a sharded store selects once and materializes
// the same views on every shard.
func (s *Store) MaterializeGraphViews(workload []*Graph, k int, opts AdvisorOptions) ([]string, error) {
	return s.coord.MaterializeGraphViews(workload, k, opts.MinSup)
}

// MaterializeAggViews selects and materializes up to k aggregate graph views
// for aggregate function f, returning their names.
func (s *Store) MaterializeAggViews(workload []*Graph, f AggFunc, k int, opts AdvisorOptions) ([]string, error) {
	return s.coord.MaterializeAggViews(workload, f, k, opts.MinSup)
}

// MaterializeView materializes one graph view over the given edges by name
// (on every shard of a sharded store).
func (s *Store) MaterializeView(name string, g *Graph) error {
	return s.coord.MaterializeView(name, s.reg.GraphIDs(g))
}

// MaterializeAggViewPath materializes one aggregate view for f along the
// closed path over the given nodes (default measure).
func (s *Store) MaterializeAggViewPath(name string, f AggFunc, nodes ...string) error {
	return s.MaterializeAggViewPathMeasure(name, f, "", nodes...)
}

// MaterializeAggViewPathMeasure materializes one aggregate view for f over a
// named measure along the closed path over the given nodes.
func (s *Store) MaterializeAggViewPathMeasure(name string, f AggFunc, measure string, nodes ...string) error {
	p := PathOf(nodes...)
	edges := make([]colstore.EdgeID, 0, p.Len())
	for _, k := range p.Edges() {
		edges = append(edges, s.reg.ID(k))
	}
	return s.coord.MaterializeAggViewOn(name, edges, f, measure)
}

// ClusterColumns recomputes the vertical-partition assignment of the master
// relation's columns around a query workload (the §6.1 clustering
// extension), so that records touched by workload queries are reassembled
// from fewer sub-relations.
func (s *Store) ClusterColumns(workload []*Graph) error {
	queries := make([][]colstore.EdgeID, len(workload))
	for i, g := range workload {
		queries[i] = s.reg.GraphIDs(g)
	}
	return s.coord.ClusterPartitions(queries)
}

// DropAllViews removes every materialized view on every shard.
func (s *Store) DropAllViews() { s.coord.DropAllViews() }

// ViewNames lists materialized graph views.
func (s *Store) ViewNames() []string {
	views := s.rel.Views()
	out := make([]string, len(views))
	for i, v := range views {
		out[i] = v.Name
	}
	return out
}

// AggViewNames lists materialized aggregate views.
func (s *Store) AggViewNames() []string {
	views := s.rel.AggViews()
	out := make([]string, len(views))
	for i, v := range views {
		out[i] = v.Name
	}
	return out
}

// --- persistence & accounting --------------------------------------------------

// Save writes the store (columns, views, registry) to a directory,
// atomically: the relation lands as a new snapshot generation installed by
// a CURRENT-pointer flip, so a crash mid-save leaves the previous snapshot
// intact and loadable. The registry is written first — it is append-only,
// so a newer registry next to an older relation snapshot is harmless,
// while the reverse could leave relation columns whose edge ids the
// registry cannot name.
// A sharded store saves one generational snapshot store per shard plus a
// SHARDS.json manifest, committed last, that pins the exact cross-shard
// generation cut (DESIGN.md §12); a single-shard store keeps the layout
// above, so every store written by earlier versions round-trips unchanged.
//
// With a write-ahead log enabled on dir, Save is a checkpoint (DESIGN.md
// §14): ingest stalls, the snapshot cuts, and past the commit point the log
// truncates, pinned to the new generation. Saving a WAL-enabled store to a
// *different* directory writes an ordinary full snapshot there and leaves
// the log untouched.
func (s *Store) Save(dir string) error {
	if s.coord.WALEnabled() && cleanPath(dir) == cleanPath(s.coord.WALDir()) {
		return s.coord.Checkpoint()
	}
	if s.coord.NumShards() > 1 {
		return s.coord.Save(dir)
	}
	if err := fsio.OS().MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("grove: save: %w", err)
	}
	if err := s.reg.Save(dir + "/registry.json"); err != nil {
		return err
	}
	return s.rel.Save(dir)
}

// SetSnapshotKeep sets how many snapshot generations Save retains on disk
// (older ones are garbage-collected after each successful Save); n < 1
// resets to the default of colstore.DefaultSnapshotKeep. Keeping at least
// two means Load can fall back to the previous generation if the newest is
// damaged.
func (s *Store) SetSnapshotKeep(n int) { s.coord.SetSnapshotKeep(n) }

// GenerationInfo describes one on-disk snapshot generation of a saved
// store, as reported by Generations.
type GenerationInfo = colstore.GenerationInfo

// Generations inventories the snapshot generations of a saved store, newest
// first, verifying each one's checksum. It reads the directory directly —
// no Store needs to load — so it works on damaged stores.
func Generations(dir string) ([]GenerationInfo, error) { return colstore.Generations(dir) }

// CurrentGeneration returns the generation name the store's CURRENT pointer
// designates, or "" for a legacy flat store.
func CurrentGeneration(dir string) string { return colstore.CurrentGeneration(dir) }

// Rollback force-installs gen (e.g. "gen-000001") as the store's current
// snapshot generation. The target must exist and pass checksum
// verification. Like Generations it operates on the directory, so a store
// whose newest generation is unloadable can be rolled back without loading.
func Rollback(dir, gen string) error { return colstore.Rollback(dir, gen) }

// LoadStore reads a store previously written with Save, detecting the
// layout: a SHARDS.json manifest marks a sharded store (loaded at its
// committed cross-shard generation cut), anything else loads as the
// single-shard layout. A write-ahead log next to the snapshot (wal.log, per
// shard) replays atop it when its header pins the loaded generation,
// recovering every op the log persisted since the last checkpoint; torn
// tails stop the replay at the last whole frame. LoadStore never modifies
// the directory — truncating a torn tail is EnableWAL's job.
func LoadStore(dir string) (*Store, error) {
	if shard.IsShardedDir(dir) {
		coord, err := shard.Load(dir)
		if err != nil {
			return nil, err
		}
		return newStore(coord), nil
	}
	rel, err := colstore.Load(dir)
	if err != nil {
		return nil, err
	}
	reg, err := graph.LoadRegistry(dir + "/registry.json")
	if err != nil {
		return nil, err
	}
	coord := shard.NewFromRelations([]*colstore.Relation{rel}, reg)
	if err := coord.ReplayWALFS(fsio.OS(), dir, nil); err != nil {
		return nil, err
	}
	return newStore(coord), nil
}

// ResetIOStats zeroes the I/O accounting counters on every shard.
func (s *Store) ResetIOStats() { s.coord.ResetIOStats() }

// IOStatsSnapshot returns the current I/O accounting counters, summed
// across all shards.
func (s *Store) IOStatsSnapshot() IOStats { return s.coord.IOStats() }
