package grove

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestStoreContextCancelled: the facade's Context variants refuse an
// already-cancelled context with context.Canceled.
func TestStoreContextCancelled(t *testing.T) {
	st := buildSCMStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := PathOf("A", "D", "E").ToGraph()
	if _, err := st.MatchContext(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchContext err = %v, want context.Canceled", err)
	}
	if _, err := st.AggregateContext(ctx, g, Sum); !errors.Is(err, context.Canceled) {
		t.Fatalf("AggregateContext err = %v, want context.Canceled", err)
	}
	// A fresh context still works after the cancelled attempts.
	if _, err := st.MatchContext(context.Background(), g); err != nil {
		t.Fatalf("MatchContext after cancellation = %v", err)
	}
}

// TestStoreExecuteBatchContextCancelled: an already-cancelled context fails
// every pending query of the batch promptly with context.Canceled.
func TestStoreExecuteBatchContextCancelled(t *testing.T) {
	st := buildSCMStore(t)
	graphs := make([]*Graph, 20)
	for i := range graphs {
		graphs[i] = PathOf("A", "D", "E").ToGraph()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	results, errs := st.ExecuteBatchContext(ctx, graphs, 4)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled batch took %v", elapsed)
	}
	if len(errs) != len(graphs) {
		t.Fatalf("%d error slots, want %d", len(errs), len(graphs))
	}
	for i := range graphs {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("query %d err = %v, want context.Canceled", i, errs[i])
		}
		if results[i] != nil {
			t.Fatalf("query %d has a result despite cancellation", i)
		}
	}
}

// TestStoreBatchPanicIsolated: one panicking query surfaces as that query's
// error while the rest of the batch completes, and the store stays usable.
func TestStoreBatchPanicIsolated(t *testing.T) {
	st := buildSCMStore(t)
	panicky := AggFunc{
		Name:     "BOOM",
		Identity: 0,
		Lift:     func(v float64) float64 { return v },
		Fold:     func(a, b float64) float64 { panic("kernel exploded") },
	}
	graphs := make([]*Graph, 8)
	for i := range graphs {
		graphs[i] = PathOf("A", "D", "E").ToGraph()
	}
	// The facade applies one AggFunc to the whole batch, so isolation is
	// asserted across batches: a panicking batch reports recovered errors,
	// and the store keeps answering afterwards.
	_, errs := st.AggregateBatchContext(context.Background(), graphs[:1], panicky, 2)
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "panicked") {
		t.Fatalf("panicking query err = %v, want recovered panic", errs[0])
	}
	results, errs := st.AggregateBatchContext(context.Background(), graphs, Sum, 4)
	for i := range graphs {
		if errs[i] != nil {
			t.Fatalf("query %d err = %v after recovered panic", i, errs[i])
		}
		if results[i] == nil {
			t.Fatalf("query %d missing result", i)
		}
	}
	// The recovered panic must not have leaked a read lock: writes proceed.
	done := make(chan struct{})
	go func() {
		rec := NewRecord()
		if err := rec.SetEdge("A", "D", 1); err == nil {
			st.Add(rec)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked after recovered panic: read lock leaked")
	}
}
