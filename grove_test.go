package grove

import (
	"errors"
	"math"
	"strings"
	"testing"
)

var errWrongAnswer = errors.New("wrong answer under concurrency")

// buildSCMStore loads a small supply-chain dataset shaped like paper Fig. 1.
func buildSCMStore(t *testing.T) *Store {
	t.Helper()
	st := Open()
	// Order 1: A→D→E→G→I, 2h per leg.
	// Order 2: A→B→F→J→K plus C→H→K.
	// Order 3: A→D→E→G→K, slower legs.
	orders := []struct {
		legs [][2]string
		time float64
	}{
		{[][2]string{{"A", "D"}, {"D", "E"}, {"E", "G"}, {"G", "I"}}, 2},
		{[][2]string{{"A", "B"}, {"B", "F"}, {"F", "J"}, {"J", "K"}, {"C", "H"}, {"H", "K"}}, 3},
		{[][2]string{{"A", "D"}, {"D", "E"}, {"E", "G"}, {"G", "K"}}, 5},
	}
	for _, o := range orders {
		rec := NewRecord()
		for _, leg := range o.legs {
			if err := rec.SetEdge(leg[0], leg[1], o.time); err != nil {
				t.Fatal(err)
			}
		}
		st.Add(rec)
	}
	st.Optimize()
	return st
}

func TestStoreBasics(t *testing.T) {
	st := buildSCMStore(t)
	if st.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", st.NumRecords())
	}
	if st.NumEdges() != 11 {
		t.Fatalf("NumEdges = %d, want 11 distinct legs", st.NumEdges())
	}
	if st.SizeBytes() <= 0 {
		t.Error("SizeBytes = 0")
	}
}

func TestMatchPath(t *testing.T) {
	st := buildSCMStore(t)
	res, err := st.MatchPath("A", "D", "E", "G")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Answer.ToSlice(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("answer = %v, want [0 2]", got)
	}
	if _, err := st.MatchPath("A"); err == nil {
		t.Error("single-node path accepted")
	}
}

func TestAggregatePathQ1(t *testing.T) {
	// Q1 (§2): delivery time via [A,D,E,G,I].
	st := buildSCMStore(t)
	agg, err := st.AggregatePath(Sum, "A", "D", "E", "G", "I")
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.RecordIDs) != 1 || agg.RecordIDs[0] != 0 {
		t.Fatalf("answer = %v", agg.RecordIDs)
	}
	if agg.Values[0][0] != 8 {
		t.Fatalf("total time = %v, want 8", agg.Values[0][0])
	}
	if _, err := st.AggregatePath(Sum, "A"); err == nil {
		t.Error("single-node aggregation accepted")
	}
}

func TestQ3StyleMaxOverPaths(t *testing.T) {
	// Longest leg delay from A to K via the D-E-G route.
	st := buildSCMStore(t)
	agg, err := st.AggregatePath(Max, "A", "D", "E", "G", "K")
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.RecordIDs) != 1 || agg.RecordIDs[0] != 2 {
		t.Fatalf("answer = %v", agg.RecordIDs)
	}
	if agg.Values[0][0] != 5 {
		t.Fatalf("max leg = %v, want 5", agg.Values[0][0])
	}
}

func TestBooleanExpressions(t *testing.T) {
	// Q2-flavoured: orders using leased legs [C,H] or [F,J,K], excluding
	// those routed via G.
	st := buildSCMStore(t)
	leased := Or(QPath("C", "H"), QPath("F", "J", "K"))
	ids, err := st.Eval(AndNot(leased, QPath("E", "G")))
	if err != nil {
		t.Fatal(err)
	}
	if got := ids.ToSlice(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("answer = %v, want [1]", got)
	}
}

func TestViewsEndToEnd(t *testing.T) {
	st := buildSCMStore(t)
	workload := []*Graph{
		PathOf("A", "D", "E", "G", "I").ToGraph(),
		PathOf("A", "D", "E", "G", "K").ToGraph(),
	}
	names, err := st.MaterializeGraphViews(workload, 3, AdvisorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no views selected")
	}
	if got := st.ViewNames(); len(got) != len(names) {
		t.Fatalf("ViewNames = %v", got)
	}

	st.ResetIOStats()
	if _, err := st.MatchPath("A", "D", "E", "G", "I"); err != nil {
		t.Fatal(err)
	}
	with := st.IOStatsSnapshot().BitmapColumnsFetched

	st.SetUseViews(false)
	st.ResetIOStats()
	if _, err := st.MatchPath("A", "D", "E", "G", "I"); err != nil {
		t.Fatal(err)
	}
	without := st.IOStatsSnapshot().BitmapColumnsFetched
	if with >= without {
		t.Errorf("views did not reduce fetches: %d vs %d", with, without)
	}

	st.DropAllViews()
	if len(st.ViewNames()) != 0 {
		t.Error("views survived DropAllViews")
	}
}

func TestAggViewsEndToEnd(t *testing.T) {
	st := buildSCMStore(t)
	if err := st.MaterializeAggViewPath("deg", Sum, "D", "E", "G"); err != nil {
		t.Fatal(err)
	}
	if got := st.AggViewNames(); len(got) != 1 || got[0] != "deg" {
		t.Fatalf("AggViewNames = %v", got)
	}
	agg, err := st.AggregatePath(Sum, "A", "D", "E", "G", "I")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Values[0][0] != 8 {
		t.Fatalf("aggregate with view = %v, want 8", agg.Values[0][0])
	}
	if agg.SegmentsPerPath[0][0] != 1 {
		t.Errorf("view not used: segments = %v", agg.SegmentsPerPath[0])
	}
}

func TestMaterializeAggViewsAdvisor(t *testing.T) {
	st := buildSCMStore(t)
	workload := []*Graph{
		PathOf("A", "D", "E", "G", "I").ToGraph(),
		PathOf("A", "D", "E", "G", "K").ToGraph(),
	}
	names, err := st.MaterializeAggViews(workload, Sum, 2, AdvisorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no aggregate views selected")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := buildSCMStore(t)
	if err := st.MaterializeView("v", PathOf("A", "D", "E").ToGraph()); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != 3 || got.NumEdges() != 11 {
		t.Fatalf("reloaded: records=%d edges=%d", got.NumRecords(), got.NumEdges())
	}
	res, err := got.MatchPath("A", "D", "E", "G", "I")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRecords() != 1 {
		t.Fatalf("reloaded query answer = %d", res.NumRecords())
	}
	if len(got.ViewNames()) != 1 {
		t.Error("view lost in round trip")
	}
}

func TestFlattenSequenceFacade(t *testing.T) {
	rec, err := FlattenSequence([]string{"A", "B", "A"}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	st := Open()
	st.Add(rec)
	res, err := st.MatchPath("B", "A#2")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRecords() != 1 {
		t.Fatal("aliased edge not queryable")
	}
}

func TestFoldAcrossPathsNaN(t *testing.T) {
	st := Open()
	rec := NewRecord()
	if err := rec.SetEdge("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	rec.AddBareElement(EdgeKey{From: "B", To: "C"})
	st.Add(rec)
	agg, err := st.AggregatePath(Sum, "A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(agg.FoldAcrossPaths()[0]) {
		t.Error("NULL measure did not surface as NaN")
	}
}

func TestPartitionWidthOption(t *testing.T) {
	st := Open(WithPartitionWidth(2))
	rec := NewRecord()
	for _, e := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "E"}} {
		if err := rec.SetEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	st.Add(rec)
	st.ResetIOStats()
	res, err := st.MatchPath("A", "B", "C", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	res.FetchMeasures()
	if st.IOStatsSnapshot().PartitionJoins == 0 {
		t.Error("narrow partitions produced no joins")
	}
}

func TestTagsEndToEnd(t *testing.T) {
	st := buildSCMStore(t)
	if err := st.Tag(0, "type", "fast-track"); err != nil {
		t.Fatal(err)
	}
	if err := st.Tag(2, "type", "regular"); err != nil {
		t.Fatal(err)
	}
	if got := st.TaggedWith("type", "fast-track").ToSlice(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("TaggedWith = %v", got)
	}
	// Orders via A→D→E→G restricted to regular ones: only record 2.
	ids, err := st.MatchTagged(PathOf("A", "D", "E", "G").ToGraph(), map[string]string{"type": "regular"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids.ToSlice(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("MatchTagged = %v, want [2]", got)
	}
	// Tagging an unknown record errors.
	if err := st.Tag(999, "k", "v"); err == nil {
		t.Error("tag on unknown record accepted")
	}
}

func TestPathsThroughFacade(t *testing.T) {
	region := NewGraph()
	region.AddEdge("D", "E")
	region.AddEdge("E", "G")
	g := NewGraph()
	for _, e := range [][2]string{{"A", "D"}, {"D", "E"}, {"E", "G"}, {"G", "I"}, {"A", "B"}} {
		g.AddEdge(e[0], e[1])
	}
	paths, err := PathsThrough(g, region, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].String() != "[A,D,E,G,I]" {
		t.Fatalf("PathsThrough = %v", paths)
	}
	co, err := Coalesce(g, region, "R2")
	if err != nil {
		t.Fatal(err)
	}
	if !co.HasEdge("A", "R2") || !co.HasEdge("R2", "I") {
		t.Errorf("Coalesce = %v", co.Elements())
	}
}

func TestClusterColumnsReducesPartitionJoins(t *testing.T) {
	st := Open(WithPartitionWidth(2))
	rec := NewRecord()
	legs := [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "E"}, {"E", "F"}}
	for _, e := range legs {
		if err := rec.SetEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	st.Add(rec)
	workload := []*Graph{PathOf("A", "B", "C").ToGraph(), PathOf("D", "E", "F").ToGraph()}

	run := func() int64 {
		st.ResetIOStats()
		for _, g := range workload {
			res, err := st.Match(g)
			if err != nil {
				t.Fatal(err)
			}
			res.FetchMeasures()
		}
		return st.IOStatsSnapshot().PartitionJoins
	}
	before := run()
	if err := st.ClusterColumns(workload); err != nil {
		t.Fatal(err)
	}
	after := run()
	if after >= before {
		t.Errorf("clustering did not reduce partition joins: %d -> %d", before, after)
	}
}

func TestConcurrentReaders(t *testing.T) {
	st := buildSCMStore(t)
	if err := st.MaterializeAggViewPath("deg", Sum, "D", "E", "G"); err != nil {
		t.Fatal(err)
	}
	// The documented contract: concurrent readers are safe between
	// mutations. Run with -race to verify.
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				res, err := st.MatchPath("A", "D", "E", "G")
				if err != nil {
					done <- err
					return
				}
				if res.NumRecords() != 2 {
					done <- errWrongAnswer
					return
				}
				agg, err := st.AggregatePath(Sum, "A", "D", "E", "G", "I")
				if err != nil {
					done <- err
					return
				}
				if agg.Values[0][0] != 8 {
					done <- errWrongAnswer
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestAggregateAlongOpenPath(t *testing.T) {
	st := Open()
	rec := NewRecord()
	for _, e := range [][2]string{{"A", "B"}, {"B", "C"}} {
		if err := rec.SetEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	for n, v := range map[string]float64{"A": 10, "B": 20, "C": 40} {
		if err := rec.SetNode(n, v); err != nil {
			t.Fatal(err)
		}
	}
	st.Add(rec)

	closed, err := st.AggregatePath(Sum, "A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if closed.Values[0][0] != 2+10+20+40 {
		t.Errorf("closed = %v, want 72", closed.Values[0][0])
	}
	open, err := st.AggregateAlong(Sum, OpenPath("A", "B", "C"), "")
	if err != nil {
		t.Fatal(err)
	}
	if open.Values[0][0] != 2+20 {
		t.Errorf("open = %v, want 22 (endpoints excluded)", open.Values[0][0])
	}
	halfOpen := Path{Nodes: []string{"A", "B", "C"}, OpenEnd: true}
	ho, err := st.AggregateAlong(Sum, halfOpen, "")
	if err != nil {
		t.Fatal(err)
	}
	if ho.Values[0][0] != 2+10+20 {
		t.Errorf("half-open = %v, want 32", ho.Values[0][0])
	}
	if _, err := st.AggregateAlong(Sum, Path{Nodes: []string{"A"}}, ""); err == nil {
		t.Error("single-node path accepted")
	}
}

func TestTextQueryFacade(t *testing.T) {
	st := buildSCMStore(t)
	res, err := st.Query("[A,D,E] AND NOT [G,I]")
	if err != nil {
		t.Fatal(err)
	}
	if res.IDs == nil || res.Agg != nil {
		t.Fatal("boolean query returned wrong result kind")
	}
	if got := res.IDs.ToSlice(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("answer = %v, want [2]", got)
	}
	agg, err := st.Query("SUM [A,D,E,G,I]")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Agg == nil || agg.Agg.Values[0][0] != 8 {
		t.Fatalf("agg result = %+v", agg.Agg)
	}
	if _, err := st.Query("[A"); err == nil {
		t.Error("bad syntax accepted")
	}
}

func TestGetRecordRoundTrip(t *testing.T) {
	st := Open()
	orig := NewRecord()
	if err := orig.SetEdge("A", "B", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := orig.SetEdgeNamed("A", "B", "cost", 9); err != nil {
		t.Fatal(err)
	}
	orig.AddBareElement(EdgeKey{From: "B", To: "C"})
	if err := orig.SetNode("A", 3); err != nil {
		t.Fatal(err)
	}
	id := st.Add(orig)
	st.Add(func() *Record { // a second record so bitmaps are non-trivial
		r := NewRecord()
		_ = r.SetEdge("X", "Y", 2)
		return r
	}())

	got, err := st.GetRecord(id)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Graph.Equals(orig.Graph) {
		t.Fatalf("structure mismatch: %v vs %v", got.Elements(), orig.Elements())
	}
	if m := got.Measure(EdgeKey{From: "A", To: "B"}); !m.Valid || m.Value != 1.5 {
		t.Errorf("default measure = %+v", m)
	}
	if m := got.MeasureNamed(EdgeKey{From: "A", To: "B"}, "cost"); !m.Valid || m.Value != 9 {
		t.Errorf("named measure = %+v", m)
	}
	if m := got.Measure(EdgeKey{From: "B", To: "C"}); m.Valid {
		t.Error("bare element grew a measure")
	}
	if m := got.Measure(EdgeKey{From: "A", To: "A"}); !m.Valid || m.Value != 3 {
		t.Errorf("node measure = %+v", m)
	}
	if _, err := st.GetRecord(99); err == nil {
		t.Error("out-of-range record accepted")
	}
}

func TestSoftDelete(t *testing.T) {
	st := buildSCMStore(t)
	res, err := st.MatchPath("A", "D", "E", "G")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRecords() != 2 {
		t.Fatalf("before delete: %d", res.NumRecords())
	}
	live, err := st.Delete(0)
	if err != nil || !live {
		t.Fatalf("Delete = %v,%v", live, err)
	}
	if st.NumDeleted() != 1 {
		t.Errorf("NumDeleted = %d", st.NumDeleted())
	}
	// Second delete is idempotent.
	if live, _ := st.Delete(0); live {
		t.Error("second delete reported live")
	}
	res, err = st.MatchPath("A", "D", "E", "G")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Answer.ToSlice(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after delete: %v, want [2]", got)
	}
	// Aggregation answers exclude deleted records too.
	agg, err := st.AggregatePath(Sum, "A", "D", "E", "G", "I")
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.RecordIDs) != 0 {
		t.Fatalf("deleted record still aggregated: %v", agg.RecordIDs)
	}
	// Expressions exclude them as well.
	ids, err := st.Eval(QPath("A", "D"))
	if err != nil {
		t.Fatal(err)
	}
	if ids.Contains(0) {
		t.Error("deleted record in expression answer")
	}
	// Undelete restores.
	if !st.Undelete(0) {
		t.Error("Undelete failed")
	}
	res, err = st.MatchPath("A", "D", "E", "G")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRecords() != 2 {
		t.Errorf("after undelete: %d", res.NumRecords())
	}
	if _, err := st.Delete(999); err == nil {
		t.Error("delete of unknown record accepted")
	}
}

func TestSoftDeleteSurvivesSaveLoad(t *testing.T) {
	dir := t.TempDir()
	st := buildSCMStore(t)
	if _, err := st.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDeleted() != 1 {
		t.Fatalf("NumDeleted after reload = %d", got.NumDeleted())
	}
	res, err := got.MatchPath("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRecords() != 0 {
		t.Error("deleted record resurrected by reload")
	}
}

func TestParseWorkloadAndAdvise(t *testing.T) {
	st := buildSCMStore(t)
	workloadText := `# analyst dashboard
[A,D,E,G,I]
SUM [A,D,E,G,K]
[A,D] AND NOT [C,H]
`
	workload, err := ParseWorkload(strings.NewReader(workloadText))
	if err != nil {
		t.Fatal(err)
	}
	// 1 path + 1 agg path + 2 leaves of the boolean statement.
	if len(workload) != 4 {
		t.Fatalf("workload size = %d, want 4", len(workload))
	}
	rep, err := st.AdviseGraphViews(workload, 10, AdvisorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorkloadQueries != 4 || rep.BitmapsBefore == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.BitmapsAfter >= rep.BitmapsBefore {
		t.Errorf("advice saves nothing: %d -> %d", rep.BitmapsBefore, rep.BitmapsAfter)
	}
	if rep.Savings() <= 0 || rep.Savings() > 1 {
		t.Errorf("Savings = %v", rep.Savings())
	}
	var sb strings.Builder
	st.RenderAdvice(&sb, rep)
	if !strings.Contains(sb.String(), "saved") {
		t.Errorf("rendered advice:\n%s", sb.String())
	}
	// Advising must not have materialized anything.
	if len(st.ViewNames()) != 0 {
		t.Error("AdviseGraphViews materialized views")
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	if _, err := ParseWorkload(strings.NewReader("[A,B]\n[oops\n")); err == nil {
		t.Error("bad workload line accepted")
	}
	workload, err := ParseWorkload(strings.NewReader("\n# only comments\n"))
	if err != nil || len(workload) != 0 {
		t.Errorf("empty workload: %v, %v", workload, err)
	}
}

func TestLeafGraphs(t *testing.T) {
	e := AndNot(Or(QPath("A", "B"), QPath("C", "D")), QPath("E", "F"))
	gs := LeafGraphs(e)
	if len(gs) != 3 {
		t.Fatalf("LeafGraphs = %d, want 3", len(gs))
	}
}

func TestStoreStats(t *testing.T) {
	st := buildSCMStore(t)
	if err := st.MaterializeView("v", PathOf("A", "D").ToGraph()); err != nil {
		t.Fatal(err)
	}
	if err := st.Tag(0, "type", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Delete(1); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Records != 3 || s.Deleted != 1 || s.DistinctEdges != 11 {
		t.Errorf("stats = %+v", s)
	}
	if s.GraphViews != 1 || s.AggregateViews != 0 {
		t.Errorf("view counts = %d/%d", s.GraphViews, s.AggregateViews)
	}
	if s.TotalMeasures != 14 { // 4+6+4 measured legs
		t.Errorf("TotalMeasures = %d", s.TotalMeasures)
	}
	if len(s.TagKeys) != 1 || s.TagKeys[0] != "type" {
		t.Errorf("TagKeys = %v", s.TagKeys)
	}
	if s.BaseSizeBytes <= 0 || s.ViewSizeBytes <= 0 || s.Partitions != 1 {
		t.Errorf("sizes/partitions = %+v", s)
	}
}

func TestResultCacheFacade(t *testing.T) {
	st := buildSCMStore(t)
	st.EnableResultCache(true, 8)
	if _, err := st.MatchPath("A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	res, err := st.MatchPath("A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache() {
		t.Error("facade cache missed")
	}
	st.EnableResultCache(false, 0)
	res, err = st.MatchPath("A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache() {
		t.Error("cache still active after disable")
	}
}
