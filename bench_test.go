// One testing.B benchmark per table and figure of the paper's evaluation
// (§7). Each benchmark times the operation the figure measures over small
// deterministic fixtures; the full row/series regeneration (with the larger
// default datasets) lives in cmd/grovebench, e.g.
//
//	go run ./cmd/grovebench -exp fig6
//
// Run everything here with: go test -bench=. -benchmem
package grove_test

import (
	"fmt"
	"sync"
	"testing"

	"grove/internal/bench"
	"grove/internal/graph"
	"grove/internal/query"
	"grove/internal/view"
	"grove/internal/workload"
)

// benchScale sizes the benchmark fixtures: large enough for stable relative
// numbers, small enough for -bench=. to finish in minutes on one core.
func benchScale() bench.Scale {
	return bench.Scale{
		SensitivityRecords: 1000,
		NYRecords:          5000,
		GNURecords:         3000,
		Fig5Records:        200,
		NumQueries:         50,
		Seed:               42,
	}
}

// fixtures are shared across benchmarks and built once.
var (
	fixOnce sync.Once
	fixNY   *workload.Dataset // with records kept (baseline loading)
	fixGNU  *workload.Dataset
	fixErr  error
)

func fixtures(b *testing.B) (*workload.Dataset, *workload.Dataset) {
	b.Helper()
	fixOnce.Do(func() {
		sc := benchScale()
		spec := workload.NYSpec(sc.NYRecords, sc.Seed)
		spec.KeepRecords = true
		fixNY, fixErr = workload.Build(spec)
		if fixErr != nil {
			return
		}
		gspec := workload.GNUSpec(sc.GNURecords, sc.Seed+1)
		gspec.KeepRecords = true
		fixGNU, fixErr = workload.Build(gspec)
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixNY, fixGNU
}

// BenchmarkTable2_DatasetStats times dataset synthesis + loading, the
// operation behind Table 2's statistics.
func BenchmarkTable2_DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := workload.Build(workload.NYSpec(500, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if ds.Stats.NumRecords != 500 {
			b.Fatal("bad dataset")
		}
	}
}

// BenchmarkFig3a_DatasetSize times the 4 systems on the uniform-query
// workload as the dataset grows (Fig. 3a).
func BenchmarkFig3a_DatasetSize(b *testing.B) {
	sc := benchScale()
	for _, mult := range []int{1, 5} {
		spec := workload.NYSpec(sc.SensitivityRecords*mult, sc.Seed)
		spec.KeepRecords = true
		ds, err := workload.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		queries := ds.Gen.UniformQueries(sc.NumQueries, 4)
		elems := make([][]graph.EdgeKey, len(queries))
		for i, q := range queries {
			elems[i] = q.Elements()
		}
		for _, sys := range bench.AllSystems(ds) {
			b.Run(fmt.Sprintf("records=%d/%s", spec.NumRecords, sys.Name()), func(b *testing.B) {
				matched := 0
				for i := 0; i < b.N; i++ {
					for _, q := range elems {
						matched += sys.RunQuery(q)
					}
				}
				b.ReportMetric(float64(matched)/float64(b.N), "records/op")
			})
		}
	}
}

// BenchmarkFig3b_QuerySize times the column store as the query graph grows
// from 1 to 1000 edges (Fig. 3b).
func BenchmarkFig3b_QuerySize(b *testing.B) {
	ny, _ := fixtures(b)
	sys := bench.NewColumnSystem(ny)
	for _, qe := range []int{1, 10, 100, 1000} {
		queries := ny.Gen.UniformQueries(20, qe)
		elems := make([][]graph.EdgeKey, len(queries))
		for i, q := range queries {
			elems[i] = q.Elements()
		}
		b.Run(fmt.Sprintf("edges=%d", qe), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range elems {
					sys.RunQuery(q)
				}
			}
		})
	}
}

// BenchmarkFig3c_Density times the column store across record densities
// (Fig. 3c).
func BenchmarkFig3c_Density(b *testing.B) {
	sc := benchScale()
	for _, density := range []float64{0.10, 0.20, 0.50} {
		ds, err := workload.BuildDense("NY", 1000, sc.SensitivityRecords/2, density, sc.Seed, false)
		if err != nil {
			b.Fatal(err)
		}
		sys := bench.NewColumnSystem(ds)
		queries := ds.Gen.UniformQueries(20, int(density*40))
		elems := make([][]graph.EdgeKey, len(queries))
		for i, q := range queries {
			elems[i] = q.Elements()
		}
		b.Run(fmt.Sprintf("density=%.0f%%", density*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range elems {
					sys.RunQuery(q)
				}
			}
		})
	}
}

// BenchmarkFig4_DiskSpace measures the storage footprint of the 4 systems
// (Fig. 4), reported as bytes metrics.
func BenchmarkFig4_DiskSpace(b *testing.B) {
	sc := benchScale()
	ds, err := workload.BuildDense("NY", 1000, sc.SensitivityRecords/2, 0.2, sc.Seed, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range bench.AllSystems(ds) {
		b.Run(sys.Name(), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				total = sys.DiskSizeBytes()
			}
			b.ReportMetric(float64(total), "bytes")
		})
	}
}

// BenchmarkFig5_EdgeDomain times the column store as the edge domain grows
// past one vertical partition (Fig. 5).
func BenchmarkFig5_EdgeDomain(b *testing.B) {
	sc := benchScale()
	for _, domain := range []int{1000, 5000, 10000} {
		ds, err := workload.BuildDense("NY", domain, sc.Fig5Records, 0.10, sc.Seed, false)
		if err != nil {
			b.Fatal(err)
		}
		sys := bench.NewColumnSystem(ds)
		queries := ds.Gen.UniformQueries(20, 10)
		elems := make([][]graph.EdgeKey, len(queries))
		for i, q := range queries {
			elems[i] = q.Elements()
		}
		b.Run(fmt.Sprintf("domain=%d/partitions=%d", domain, ds.Rel.NumPartitions()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range elems {
					sys.RunQuery(q)
				}
			}
		})
	}
}

// BenchmarkFig6_GraphViews times the uniform graph-query workload with and
// without materialized graph views (Fig. 6's endpoints).
func BenchmarkFig6_GraphViews(b *testing.B) {
	ny, _ := fixtures(b)
	sc := benchScale()
	queries := ny.Gen.UniformQueries(sc.NumQueries, 8)
	eng := query.NewEngine(ny.Rel, ny.Reg)
	adv := view.NewAdvisor(ny.Rel, ny.Reg)

	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, qg := range queries {
				res, err := eng.ExecuteGraphQuery(query.NewGraphQuery(qg))
				if err != nil {
					b.Fatal(err)
				}
				res.FetchMeasures()
			}
		}
	}
	ny.Rel.DropAllViews()
	b.Run("budget=0%", run)
	if _, err := adv.MaterializeGraphViews(queries, sc.NumQueries); err != nil {
		b.Fatal(err)
	}
	b.Run("budget=100%", run)
	ny.Rel.DropAllViews()
}

// BenchmarkFig7_AggViews times the aggregate-query workload with and without
// aggregate graph views (Fig. 7's endpoints).
func BenchmarkFig7_AggViews(b *testing.B) {
	_, gnu := fixtures(b)
	sc := benchScale()
	queries := gnu.Gen.UniformPathQueries(sc.NumQueries, 4, 8)
	eng := query.NewEngine(gnu.Rel, gnu.Reg)
	adv := view.NewAdvisor(gnu.Rel, gnu.Reg)

	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, qg := range queries {
				if _, err := eng.ExecutePathAggQuery(query.NewPathAggQuery(qg, query.Sum)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	gnu.Rel.DropAllViews()
	b.Run("budget=0%", run)
	if _, err := adv.MaterializeAggViews(queries, query.Sum, sc.NumQueries); err != nil {
		b.Fatal(err)
	}
	b.Run("budget=100%", run)
	gnu.Rel.DropAllViews()
}

// BenchmarkFig8_Zipf times the Zipf graph-query workload with and without
// views (Fig. 8's NY graph-query series endpoints).
func BenchmarkFig8_Zipf(b *testing.B) {
	ny, _ := fixtures(b)
	sc := benchScale()
	queries := ny.Gen.ZipfQueries(sc.NumQueries, 25, 8, false)
	eng := query.NewEngine(ny.Rel, ny.Reg)
	adv := view.NewAdvisor(ny.Rel, ny.Reg)

	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, qg := range queries {
				res, err := eng.ExecuteGraphQuery(query.NewGraphQuery(qg))
				if err != nil {
					b.Fatal(err)
				}
				res.FetchMeasures()
			}
		}
	}
	ny.Rel.DropAllViews()
	b.Run("budget=0%", run)
	if _, err := adv.MaterializeGraphViews(queries, sc.NumQueries); err != nil {
		b.Fatal(err)
	}
	b.Run("budget=100%", run)
	ny.Rel.DropAllViews()
}

// BenchmarkFig9_Candidates times candidate-view generation across minimum
// supports (Fig. 9's x-axis), for both generators.
func BenchmarkFig9_Candidates(b *testing.B) {
	ny, _ := fixtures(b)
	sc := benchScale()
	queries := ny.Gen.ZipfQueries(sc.NumQueries, 25, 8, false)
	adv := view.NewAdvisor(ny.Rel, ny.Reg)
	sets := adv.WorkloadEdgeSets(queries)
	for _, minSup := range []int{0, 5, 25} {
		b.Run(fmt.Sprintf("minSup=%d", minSup), func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				cands, err := view.Candidates(sets, minSup)
				if err != nil {
					b.Fatal(err)
				}
				n = len(cands)
			}
			b.ReportMetric(float64(n), "candidates")
		})
	}
}

// BenchmarkFig10_GIndex times fragment mining + discriminative selection,
// the preprocessing Figs. 10–11 compare against view selection.
func BenchmarkFig10_GIndex(b *testing.B) {
	ny, _ := fixtures(b)
	sample := ny.Records[:400]
	b.Run("mine+select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			frags, err := minedFragments(sample)
			if err != nil {
				b.Fatal(err)
			}
			if len(frags) == 0 {
				b.Fatal("no fragments")
			}
		}
	})
	// View selection over the same workload, for the preprocessing-cost
	// comparison (paper: 1.5h gSpan vs <1s view selection).
	sc := benchScale()
	queries := ny.Gen.UniformQueries(sc.NumQueries, 8)
	adv := view.NewAdvisor(ny.Rel, ny.Reg)
	b.Run("view-selection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := adv.SelectGraphViews(queries, sc.NumQueries); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig11_GIndexAgg times the aggregate-query workload with fragment
// bitmap columns vs aggregate views (Fig. 11's comparison at full budget).
func BenchmarkFig11_GIndexAgg(b *testing.B) {
	ny, _ := fixtures(b)
	sc := benchScale()
	queries := ny.Gen.UniformPathQueries(sc.NumQueries, 4, 8)
	eng := query.NewEngine(ny.Rel, ny.Reg)
	adv := view.NewAdvisor(ny.Rel, ny.Reg)

	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, qg := range queries {
				if _, err := eng.ExecutePathAggQuery(query.NewPathAggQuery(qg, query.Sum)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	// Fragments as plain bitmap columns.
	ny.Rel.DropAllViews()
	frags, err := minedFragments(ny.Records[:400])
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	for _, f := range frags {
		if n >= sc.NumQueries {
			break
		}
		if _, err := ny.Rel.MaterializeView(fmt.Sprintf("frag%d", n), ny.Reg.IDs(f.Edges)); err == nil {
			n++
		}
	}
	b.Run("gindex-fragments", run)

	// Aggregate views selected by the advisor.
	ny.Rel.DropAllViews()
	if _, err := adv.MaterializeAggViews(queries, query.Sum, sc.NumQueries); err != nil {
		b.Fatal(err)
	}
	b.Run("aggregate-views", run)
	ny.Rel.DropAllViews()
}
