//go:build !race

package grove

// raceEnabled reports whether this test binary was built with -race; see
// race_test.go.
const raceEnabled = false
