package grove

import (
	"errors"
	"testing"
)

// TestWorkloadRecordReplayRoundTrip is the recorder acceptance criterion: a
// workload captured on a single-shard store replays against a differently
// sharded store with every digest verified — sharding must not change a
// single answer bit.
func TestWorkloadRecordReplayRoundTrip(t *testing.T) {
	src := Open()
	loadSCMOrders(t, src)
	path := t.TempDir() + "/workload.jsonl"

	if src.RecordingActive() {
		t.Fatal("recorder active before start")
	}
	if err := src.StartWorkloadRecording(path); err != nil {
		t.Fatal(err)
	}
	if !src.RecordingActive() {
		t.Fatal("recorder not active after start")
	}
	if err := src.StartWorkloadRecording(path); err == nil {
		t.Fatal("second StartWorkloadRecording accepted")
	}

	// A mixed workload: graph match, path aggregations (default and explicit
	// path), statements, a batch, a boolean expression, and a parse failure.
	if _, err := src.MatchPath("A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.AggregatePath(Sum, "A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.AggregateAlong(Min, PathOf("A", "D", "E"), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Query("[A,D,E] AND NOT [A,B]"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Query("SUM [A,D,E,G,I]"); err != nil {
		t.Fatal(err)
	}
	graphs := []*Graph{PathOf("A", "B", "F").ToGraph(), PathOf("C", "H", "K").ToGraph()}
	if _, err := src.ExecuteBatch(graphs, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Eval(AndNot(QPath("C", "H"), QPath("E", "G"))); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Query("]["); err == nil {
		t.Fatal("malformed statement accepted")
	}
	if err := src.StopWorkloadRecording(); err != nil {
		t.Fatal(err)
	}
	if src.RecordingActive() {
		t.Fatal("recorder still active after stop")
	}

	events, err := ReadWorkloadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	// 8 successful queries + 1 failed statement + the final views snapshot.
	if len(events) != 10 {
		t.Fatalf("events = %d, want 10", len(events))
	}
	if last := events[len(events)-1]; last.Type != "views" {
		t.Fatalf("last event = %+v, want a view-usage snapshot", last)
	}
	var kinds []string
	for i, ev := range events[:9] {
		if ev.Type != "query" {
			t.Fatalf("event %d type = %q", i, ev.Type)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
		if ev.Error == "" && ev.Digest == "" {
			t.Errorf("successful event %d carries no digest: %+v", i, ev)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []string{"graph", "pathagg", "pathagg", "statement", "statement", "graph", "graph", "expr", "statement"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if !events[3].Statement || events[3].Text != "[A,D,E] AND NOT [A,B]" {
		t.Errorf("statement event = %+v", events[3])
	}
	if failed := events[8]; failed.Error == "" || failed.Digest != "" {
		t.Errorf("failed event = %+v, want error recorded and digest cleared", failed)
	}
	if len(events[2].Paths) != 1 || len(events[2].Paths[0].Nodes) != 3 {
		t.Errorf("explicit-path event lost its paths: %+v", events[2])
	}

	// Replay against a 3-shard store: answers must digest identically.
	dst := NewSharded(3)
	loadSCMOrders(t, dst)
	stats, err := dst.ReplayWorkload(events)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries != 9 {
		t.Errorf("query events = %d, want 9", stats.Queries)
	}
	// The failed statement and the non-replayable expression are skipped.
	if stats.Skipped != 2 {
		t.Errorf("skipped = %d, want 2", stats.Skipped)
	}
	if stats.Replayed != 7 || stats.Verified != 7 {
		t.Errorf("replayed %d verified %d, want 7/7", stats.Replayed, stats.Verified)
	}
	if stats.Mismatched != 0 {
		t.Errorf("mismatched = %d — sharded answers must be bit-identical", stats.Mismatched)
	}
}

// TestReplayDigestMismatchDetected proves verification has teeth: replaying
// against a store with different contents flags the divergence instead of
// silently passing.
func TestReplayDigestMismatchDetected(t *testing.T) {
	src := Open()
	loadSCMOrders(t, src)
	path := t.TempDir() + "/workload.jsonl"
	if err := src.StartWorkloadRecording(path); err != nil {
		t.Fatal(err)
	}
	if _, err := src.MatchPath("A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	if err := src.StopWorkloadRecording(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadWorkloadLog(path)
	if err != nil {
		t.Fatal(err)
	}

	dst := Open()
	loadSCMOrders(t, dst)
	extra := NewRecord()
	if err := extra.SetEdge("A", "D", 1); err != nil {
		t.Fatal(err)
	}
	if err := extra.SetEdge("D", "E", 1); err != nil {
		t.Fatal(err)
	}
	dst.Add(extra)

	stats, err := dst.ReplayWorkload(events)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 1 || stats.Mismatched != 1 || stats.Verified != 0 {
		t.Errorf("stats = %+v, want the diverging answer flagged", stats)
	}
}

// TestReplayEventNotReplayable pins which events replay refuses: snapshots
// and programmatic boolean expressions.
func TestReplayEventNotReplayable(t *testing.T) {
	st := Open()
	loadSCMOrders(t, st)
	for _, ev := range []WorkloadEvent{
		{Type: "views"},
		{Type: "query", Kind: "expr", Text: "([C,H] AND [E,G])"},
	} {
		if _, err := st.ReplayEvent(ev); !errors.Is(err, ErrNotReplayable) {
			t.Errorf("ReplayEvent(%+v) = %v, want ErrNotReplayable", ev, err)
		}
	}
	// StopWorkloadRecording with no recorder attached is a no-op.
	if err := st.StopWorkloadRecording(); err != nil {
		t.Fatal(err)
	}
}
