package grove

import (
	"math"
	"strings"
	"testing"
)

const sampleTraces = `{"edges":[{"from":"A","to":"D","measure":3.5,"measures":{"cost":40}},{"from":"D","to":"E","measure":1.5}],"nodes":[{"id":"D","measure":0.5}],"tags":{"type":"fast-track"}}
{"edges":[{"from":"A","to":"D","measure":4.0},{"from":"D","to":"E"}]}

{"edges":[{"from":"A","to":"B","measure":1},{"from":"B","to":"A","measure":2}]}
`

func TestImportTraces(t *testing.T) {
	st := Open()
	n, err := st.ImportTraces(strings.NewReader(sampleTraces))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("imported %d, want 3", n)
	}
	// Records 0 and 1 contain the path; record 0 sums edges 3.5+1.5 plus
	// node D's 0.5 (closed path), record 1 has a NULL (D,E) leg.
	agg, err := st.AggregatePath(Sum, "A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.RecordIDs) != 2 || agg.Values[0][0] != 5.5 {
		t.Fatalf("SUM = %v over %v", agg.Values, agg.RecordIDs)
	}
	if !math.IsNaN(agg.Values[0][1]) {
		t.Fatalf("record 1 should be NULL, got %v", agg.Values[0][1])
	}
	cost, err := st.AggregatePathMeasure(Sum, "cost", "A", "D")
	if err != nil {
		t.Fatal(err)
	}
	if cost.Values[0][0] != 40 {
		t.Errorf("cost = %v", cost.Values[0][0])
	}
	if got := st.TaggedWith("type", "fast-track").ToSlice(); len(got) != 1 || got[0] != 0 {
		t.Errorf("tag = %v", got)
	}
	// Record 2 was cyclic (A→B→A) and must be flattened.
	res, err := st.MatchPath("B", "A#2")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRecords() != 1 {
		t.Error("cyclic trace not flattened")
	}
}

func TestImportTracesErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       "{not json}\n",
		"empty record":   `{"edges":[]}` + "\n",
		"empty endpoint": `{"edges":[{"from":"","to":"B"}]}` + "\n",
		"empty node id":  `{"nodes":[{"id":""}],"edges":[{"from":"A","to":"B"}]}` + "\n",
	}
	for name, input := range cases {
		st := Open()
		if _, err := st.ImportTraces(strings.NewReader(input)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Good line then bad line: first record stays imported.
	st := Open()
	n, err := st.ImportTraces(strings.NewReader(
		`{"edges":[{"from":"A","to":"B","measure":1}]}` + "\n{oops}\n"))
	if err == nil {
		t.Fatal("bad second line accepted")
	}
	if n != 1 || st.NumRecords() != 1 {
		t.Errorf("partial import: n=%d records=%d", n, st.NumRecords())
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	st := Open()
	if _, err := st.ImportTraces(strings.NewReader(sampleTraces)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	n, err := st.ExportTraces(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("exported %d", n)
	}
	st2 := Open()
	if _, err := st2.ImportTraces(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if st2.NumRecords() != st.NumRecords() || st2.NumEdges() != st.NumEdges() {
		t.Fatalf("round trip: records %d vs %d, edges %d vs %d",
			st2.NumRecords(), st.NumRecords(), st2.NumEdges(), st.NumEdges())
	}
	// Measures and tags survive.
	agg, err := st2.AggregatePathMeasure(Sum, "cost", "A", "D")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Values[0][0] != 40 {
		t.Errorf("cost after round trip = %v", agg.Values[0][0])
	}
	if st2.TaggedWith("type", "fast-track").Cardinality() != 1 {
		t.Error("tag lost in round trip")
	}
}
