package grove

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"grove/internal/colstore"
	"grove/internal/fsio"
	"grove/internal/wal"
)

// --- harness -----------------------------------------------------------------

// copyTree clones a store directory so each sweep iteration crashes a fresh
// copy of the same starting state.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		in, err := os.Open(p)
		if err != nil {
			return err
		}
		defer in.Close()
		w, err := os.Create(out)
		if err != nil {
			return err
		}
		if _, err := io.Copy(w, in); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// recordString canonicalizes one record: elements in Elements() order with
// default and named measures spelled out.
func recordString(rec *Record) string {
	var b strings.Builder
	names := rec.MeasureNames()
	for _, k := range rec.Elements() {
		fmt.Fprintf(&b, "[%s>%s", k.From, k.To)
		if m := rec.Measure(k); m.Valid {
			fmt.Fprintf(&b, " =%g", m.Value)
		}
		for _, name := range names {
			if m := rec.MeasureNamed(k, name); m.Valid {
				fmt.Fprintf(&b, " %s=%g", name, m.Value)
			}
		}
		b.WriteString("]")
	}
	return b.String()
}

// stateDigest canonicalizes a store's full logical state — records, deletion
// flags, tags, and materialized view contents (bitmaps AND pre-aggregated
// measures) — into a comparable string. Ids are global, so the digest is
// shard-count invariant: a 3-shard store and a single-shard store holding the
// same collection digest identically.
func stateDigest(t *testing.T, st *Store) string {
	t.Helper()
	var b strings.Builder
	n := st.NumRecords()
	ns := uint32(st.NumShards())
	fmt.Fprintf(&b, "records=%d\n", n)
	for id := uint32(0); int(id) < n; id++ {
		u := st.coord.Unit(int(id % ns))
		del := ""
		if u.Rel.IsDeleted(id / ns) {
			del = " DELETED"
		}
		rec, err := st.GetRecord(id)
		if err != nil {
			t.Fatalf("digest: GetRecord(%d): %v", id, err)
		}
		fmt.Fprintf(&b, "rec %d%s: %s\n", id, del, recordString(rec))
	}
	for _, key := range st.coord.TagKeys() {
		vals := map[string]bool{}
		for i := 0; i < int(ns); i++ {
			for _, v := range st.coord.Unit(i).Rel.TagValues(key) {
				vals[v] = true
			}
		}
		sorted := make([]string, 0, len(vals))
		for v := range vals {
			sorted = append(sorted, v)
		}
		sort.Strings(sorted)
		for _, v := range sorted {
			var ids []uint32
			st.TaggedWith(key, v).Each(func(rec uint32) bool {
				ids = append(ids, rec)
				return true
			})
			fmt.Fprintf(&b, "tag %s=%s: %v\n", key, v, ids)
		}
	}
	// Views: union the per-shard bitmaps into global-id sets; aggregate views
	// also record each member's pre-aggregated measure.
	gviews := map[string][]uint32{}
	aviews := map[string]map[uint32]float64{}
	for i := 0; i < int(ns); i++ {
		rel := st.coord.Unit(i).Rel
		rel.BeginRead()
		for _, v := range rel.Views() {
			v.Col.Bits().Each(func(local uint32) bool {
				gviews[v.Name] = append(gviews[v.Name], local*ns+uint32(i))
				return true
			})
		}
		for _, av := range rel.AggViews() {
			m := aviews[av.Name]
			if m == nil {
				m = map[uint32]float64{}
				aviews[av.Name] = m
			}
			av.Col.Bits().Each(func(local uint32) bool {
				if val, ok := av.Measure.Get(local); ok {
					m[local*ns+uint32(i)] = val
				} else {
					m[local*ns+uint32(i)] = -1e308 // member without a value
				}
				return true
			})
		}
		rel.EndRead()
	}
	for _, name := range sortedKeys(gviews) {
		ids := gviews[name]
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		fmt.Fprintf(&b, "view %s: %v\n", name, ids)
	}
	for _, name := range sortedKeysF(aviews) {
		m := aviews[name]
		ids := make([]uint32, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		fmt.Fprintf(&b, "aggview %s:", name)
		for _, id := range ids {
			fmt.Fprintf(&b, " %d=%g", id, m[id])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func sortedKeys(m map[string][]uint32) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysF(m map[string]map[uint32]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// buildWALBase saves the sweep's starting store to dir: four records (one
// already inside the view, others one edge short of it), a graph view and an
// aggregate view over the path a→b→c.
func buildWALBase(t *testing.T, shards int, dir string) {
	t.Helper()
	st := NewSharded(shards)
	r0 := NewRecord()
	mustSet(t, r0.SetEdge("a", "b", 1))
	r1 := NewRecord()
	mustSet(t, r1.SetEdge("a", "b", 2))
	mustSet(t, r1.SetEdge("b", "c", 3))
	r2 := NewRecord()
	mustSet(t, r2.SetEdge("x", "y", 5))
	r3 := NewRecord()
	mustSet(t, r3.SetEdgeNamed("a", "b", "cost", 2))
	for _, r := range []*Record{r0, r1, r2, r3} {
		st.Add(r)
	}
	if err := st.MaterializeView("v", PathOf("a", "b", "c").ToGraph()); err != nil {
		t.Fatal(err)
	}
	if err := st.MaterializeAggViewPath("sv", Sum, "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
}

func mustSet(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// walOp is one mutation of the sweep's op sequence, applied through the
// store's durable mutators.
type walOp struct {
	name  string
	apply func(st *Store) error
}

// walOps is the sweep's op sequence: every WAL op kind, including edge
// appends that flip view membership (exercising incremental maintenance on
// both the live and the replay path), a delete/undelete pair, and tags.
func walOps() []walOp {
	return []walOp{
		{"append-4", func(st *Store) error {
			r := NewRecord()
			if err := r.SetEdge("a", "b", 4); err != nil {
				return err
			}
			if err := r.SetEdge("d", "e", 1); err != nil {
				return err
			}
			_, err := st.Append(r)
			return err
		}},
		{"append-5", func(st *Store) error {
			r := NewRecord()
			if err := r.SetEdge("a", "b", 1); err != nil {
				return err
			}
			if err := r.SetEdge("b", "c", 1); err != nil {
				return err
			}
			if err := r.SetEdgeNamed("b", "c", "cost", 3); err != nil {
				return err
			}
			_, err := st.Append(r)
			return err
		}},
		{"edge-completes-0", func(st *Store) error { return st.AppendEdge(0, "b", "c", 5) }},
		{"edge-named-3", func(st *Store) error { return st.AppendEdgeMeasure(3, "b", "c", "cost", 7) }},
		{"bare-edge-2", func(st *Store) error { return st.AppendBareEdge(2, "y", "z") }},
		{"tag-0", func(st *Store) error { return st.Tag(0, "type", "hot") }},
		{"delete-1", func(st *Store) error {
			_, err := st.Delete(1)
			return err
		}},
		{"append-6", func(st *Store) error {
			r := NewRecord()
			if err := r.SetEdge("a", "b", 2); err != nil {
				return err
			}
			if err := r.SetEdge("b", "c", 2); err != nil {
				return err
			}
			_, err := st.Append(r)
			return err
		}},
		{"undelete-1", func(st *Store) error {
			if !st.Undelete(1) {
				return fmt.Errorf("undelete failed")
			}
			return nil
		}},
		{"tag-4", func(st *Store) error { return st.Tag(4, "kind", "cold") }},
		{"edge-completes-4", func(st *Store) error { return st.AppendEdge(4, "b", "c", 1) }},
		{"delete-2", func(st *Store) error {
			_, err := st.Delete(2)
			return err
		}},
	}
}

// modelDigests loads the base store and applies the op sequence WITHOUT a
// write-ahead log, digesting after every op: digests[p] is the one true state
// after the first p ops. Crash recovery must always land on one of these.
func modelDigests(t *testing.T, baseDir string, ops []walOp) []string {
	t.Helper()
	st, err := LoadStore(baseDir)
	if err != nil {
		t.Fatal(err)
	}
	digests := []string{stateDigest(t, st)}
	for _, op := range ops {
		if err := op.apply(st); err != nil {
			t.Fatalf("model op %s: %v", op.name, err)
		}
		digests = append(digests, stateDigest(t, st))
	}
	return digests
}

// mustLoad loads a store or fails the test.
func mustLoad(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// runWALSweep is the shared body of the single-shard and sharded fault
// sweeps: crash WAL-logged ingest at every fsio operation (both torn modes)
// and assert recovery always lands on a model prefix at or past the
// acknowledged op count.
func runWALSweep(t *testing.T, shards int, baseDir string, digests []string, ops []walOp) {
	t.Helper()
	cfg := WALConfig{Policy: SyncAlways}

	// Unarmed counting run measures the total fsio op count of attach+ingest.
	countDir := t.TempDir()
	copyTree(t, baseDir, countDir)
	st := mustLoad(t, countDir)
	fault := fsio.NewFaultFS(fsio.OS())
	fault.FailAt(0)
	if err := st.coord.AttachWALFS(fault, countDir, cfg); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := op.apply(st); err != nil {
			t.Fatalf("counting run op %s: %v", op.name, err)
		}
	}
	total := fault.Ops()
	if total < int64(len(ops)) {
		t.Fatalf("suspiciously few fsio ops: %d", total)
	}
	// The unfaulted run must recover to exactly the final model state.
	if got := stateDigest(t, mustLoad(t, countDir)); got != digests[len(ops)] {
		t.Fatalf("clean WAL recovery diverged from the model:\n%s\nwant:\n%s", got, digests[len(ops)])
	}

	for _, torn := range []bool{false, true} {
		sawBase, sawFull := false, false
		for k := int64(1); k <= total; k++ {
			dir := t.TempDir()
			copyTree(t, baseDir, dir)
			st := mustLoad(t, dir)
			fault := fsio.NewFaultFS(fsio.OS())
			fault.SetTornWrites(torn)
			fault.FailAt(k)

			// acked counts ops whose durable append was acknowledged: under
			// SyncAlways every one of them MUST survive the crash.
			acked := 0
			if err := st.coord.AttachWALFS(fault, dir, cfg); err == nil {
				for _, op := range ops {
					err := op.apply(st)
					if err == nil && st.WALError() == nil {
						acked++
					}
				}
			} else {
				// Attach crashed: ops proceed un-logged on the in-memory
				// store; the directory must still recover to the base state.
				for _, op := range ops {
					op.apply(st) //nolint:errcheck // in-memory application; disk state is what the sweep asserts
				}
			}
			opLog := fault.OpLog()

			rec, err := LoadStore(dir)
			if err != nil {
				t.Fatalf("torn=%v k=%d: recovery load failed: %v\nops:\n%s",
					torn, k, err, strings.Join(opLog, "\n"))
			}
			got := stateDigest(t, rec)
			matched := -1
			for p := acked; p < len(digests); p++ {
				if got == digests[p] {
					matched = p
					break
				}
			}
			if matched == -1 {
				// Not a prefix ≥ acked: either an acked op was lost, a
				// partial op applied, or (sharded) the cut mixed LSNs.
				for p := 0; p < acked; p++ {
					if got == digests[p] {
						t.Fatalf("torn=%v k=%d: recovered prefix %d but %d ops were fsync-acknowledged\nops:\n%s",
							torn, k, p, acked, strings.Join(opLog, "\n"))
					}
				}
				t.Fatalf("torn=%v k=%d: recovered state matches NO model prefix (acked=%d)\ngot:\n%s\nops:\n%s",
					torn, k, acked, got, strings.Join(opLog, "\n"))
			}
			if matched == 0 {
				sawBase = true
			}
			if matched == len(ops) {
				sawFull = true
			}
		}
		// The sweep must span the spectrum: earliest crashes keep the base
		// state, latest ones recover every op.
		if !sawBase || !sawFull {
			t.Fatalf("torn=%v: sweep did not span base→full (base=%v full=%v)", torn, sawBase, sawFull)
		}
	}
	_ = shards
}

// --- the sweeps --------------------------------------------------------------

// TestWALFaultSweep is the WAL durability claim, tested exhaustively on a
// single-shard store: crash the logged ingest at every fsio operation (plain
// and torn-write modes) and assert Load afterwards always yields a clean
// prefix of the op sequence — every fsync-acknowledged op present, no partial
// op ever applied, views included.
func TestWALFaultSweep(t *testing.T) {
	base := t.TempDir()
	buildWALBase(t, 1, base)
	ops := walOps()
	digests := modelDigests(t, base, ops)
	for p := 1; p < len(digests); p++ {
		if digests[p] == digests[p-1] {
			t.Fatalf("op %s did not change the digest — the sweep would not detect losing it", ops[p-1].name)
		}
	}
	runWALSweep(t, 1, base, digests, ops)
}

// TestShardedWALFaultSweep repeats the sweep on a 3-shard store, comparing
// recovered states against the SINGLE-shard model digests: recovery must be a
// prefix of the op sequence AND bit-identical to what a single-shard store
// holds after the same prefix. A cross-shard cut mixing per-shard LSNs would
// match no single-shard prefix and fail loudly.
func TestShardedWALFaultSweep(t *testing.T) {
	base1 := t.TempDir()
	buildWALBase(t, 1, base1)
	ops := walOps()
	digests := modelDigests(t, base1, ops)

	base3 := t.TempDir()
	buildWALBase(t, 3, base3)
	if got := stateDigest(t, mustLoad(t, base3)); got != digests[0] {
		t.Fatalf("3-shard base digests differently from 1-shard base:\n%s\nvs:\n%s", got, digests[0])
	}
	runWALSweep(t, 3, base3, digests, ops)
}

// TestWALCheckpointFaultSweep crashes Save-with-WAL (the checkpoint) at every
// fsio operation: since a checkpoint only reorganizes durability (folds the
// log into a snapshot) the recovered logical state must be IDENTICAL at every
// crash point — before the commit the old snapshot plus the old log carries
// it, after the commit the new snapshot alone does, and the log truncation
// happening strictly after the commit point is what keeps the middle safe.
func TestWALCheckpointFaultSweep(t *testing.T) {
	// pre = base + a synced WAL carrying the full op sequence, un-checkpointed.
	pre := t.TempDir()
	buildWALBase(t, 1, pre)
	st := mustLoad(t, pre)
	if err := st.EnableWAL(pre, WALConfig{Policy: SyncAlways}); err != nil {
		t.Fatal(err)
	}
	for _, op := range walOps() {
		if err := op.apply(st); err != nil {
			t.Fatalf("op %s: %v", op.name, err)
		}
	}
	if err := st.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	want := stateDigest(t, st)
	preGen := colstore.CurrentGeneration(pre)

	cfg := WALConfig{Policy: SyncAlways}
	countDir := t.TempDir()
	copyTree(t, pre, countDir)
	st = mustLoad(t, countDir)
	fault := fsio.NewFaultFS(fsio.OS())
	fault.FailAt(0)
	if err := st.coord.AttachWALFS(fault, countDir, cfg); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(countDir); err != nil { // routes to Checkpoint
		t.Fatal(err)
	}
	total := fault.Ops()
	if got := stateDigest(t, mustLoad(t, countDir)); got != want {
		t.Fatalf("clean checkpoint changed the logical state:\n%s\nwant:\n%s", got, want)
	}
	// The clean checkpoint must truncate: the new log is empty and pinned to
	// the new generation.
	infos, err := InspectWAL(countDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Ops != 0 || infos[0].Gen == preGen {
		t.Fatalf("post-checkpoint log = %+v (pre gen %s)", infos, preGen)
	}

	for _, torn := range []bool{false, true} {
		sawOld, sawNew := false, false
		for k := int64(1); k <= total; k++ {
			dir := t.TempDir()
			copyTree(t, pre, dir)
			st := mustLoad(t, dir)
			fault := fsio.NewFaultFS(fsio.OS())
			fault.SetTornWrites(torn)
			fault.FailAt(k)
			if err := st.coord.AttachWALFS(fault, dir, cfg); err == nil {
				if err := st.Save(dir); err == nil {
					t.Fatalf("torn=%v k=%d: injected fault did not surface from checkpoint", torn, k)
				}
			}
			opLog := fault.OpLog()
			rec, err := LoadStore(dir)
			if err != nil {
				t.Fatalf("torn=%v k=%d: load after crashed checkpoint failed: %v\nops:\n%s",
					torn, k, err, strings.Join(opLog, "\n"))
			}
			if got := stateDigest(t, rec); got != want {
				t.Fatalf("torn=%v k=%d: crashed checkpoint changed the logical state\ngot:\n%s\nops:\n%s",
					torn, k, got, strings.Join(opLog, "\n"))
			}
			if colstore.CurrentGeneration(dir) == preGen {
				sawOld = true
			} else {
				sawNew = true
			}
		}
		if !sawOld || !sawNew {
			t.Fatalf("torn=%v: checkpoint sweep did not cross the commit point (old=%v new=%v)", torn, sawOld, sawNew)
		}
	}
}

// --- targeted recovery behaviors ---------------------------------------------

// TestOpenDurableLifecycle: create → append durably → reopen replays → save
// checkpoints → reopen again finds the checkpointed state with an empty log.
func TestOpenDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDurable(dir, WALConfig{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !st.WALEnabled() {
		t.Fatal("OpenDurable did not enable WAL")
	}
	r := NewRecord()
	mustSet(t, r.SetEdge("a", "b", 1))
	id, err := st.Append(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendEdge(id, "b", "c", 2); err != nil {
		t.Fatal(err)
	}

	// Reopen without ever snapshotting: the log alone must carry the state.
	st2, err := OpenDurable(dir, WALConfig{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if st2.NumRecords() != 1 {
		t.Fatalf("replayed records = %d", st2.NumRecords())
	}
	if ws := st2.WALStats(); ws.ReplayedOps != 2 {
		t.Fatalf("replayed ops = %d, want 2", ws.ReplayedOps)
	}
	got, err := st2.GetRecord(id)
	if err != nil {
		t.Fatal(err)
	}
	if m := got.Measure(EdgeKey{From: "b", To: "c"}); !m.Valid || m.Value != 2 {
		t.Fatalf("appended edge lost: %+v", m)
	}

	// Checkpoint folds the log away; the next open replays nothing.
	if err := st2.Save(dir); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenDurable(dir, WALConfig{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if ws := st3.WALStats(); ws.ReplayedOps != 0 || st3.NumRecords() != 1 {
		t.Fatalf("post-checkpoint open: %+v, records %d", ws, st3.NumRecords())
	}
}

// TestShardedLoadManifestFallbacks: a damaged SHARDS.json fails the load with
// a clean error and leaves the write-ahead logs untouched — recovery tooling
// still has everything.
func TestShardedLoadManifestFallbacks(t *testing.T) {
	src := t.TempDir()
	buildWALBase(t, 3, src)
	st := mustLoad(t, src)
	if err := st.EnableWAL(src, WALConfig{Policy: SyncAlways}); err != nil {
		t.Fatal(err)
	}
	for _, op := range walOps()[:4] {
		if err := op.apply(st); err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
	}
	if err := st.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	// walBytes snapshots every log file byte-for-byte, found by layout (not
	// via the manifest — the whole point is the manifest may be gone).
	walBytes := func(dir string) map[string][]byte {
		paths, err := filepath.Glob(filepath.Join(dir, "shard-*", "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			rel, err := filepath.Rel(dir, p)
			if err != nil {
				t.Fatal(err)
			}
			out[rel] = b
		}
		if len(out) != 3 {
			t.Fatalf("expected 3 shard logs, found %v", out)
		}
		return out
	}

	for _, tc := range []struct {
		name   string
		mutate func(dir string)
	}{
		{"missing-manifest", func(dir string) {
			if err := os.Remove(filepath.Join(dir, "SHARDS.json")); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt-manifest", func(dir string) {
			if err := os.WriteFile(filepath.Join(dir, "SHARDS.json"), []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		dir := t.TempDir()
		copyTree(t, src, dir)
		before := walBytes(dir)
		tc.mutate(dir)
		if _, err := LoadStore(dir); err == nil {
			t.Fatalf("%s: load succeeded on a damaged manifest", tc.name)
		}
		after := walBytes(dir)
		if len(after) != len(before) {
			t.Fatalf("%s: WAL file set changed", tc.name)
		}
		for p, b := range before {
			if string(after[p]) != string(b) {
				t.Fatalf("%s: failed load modified WAL %s", tc.name, p)
			}
		}
	}
}

// TestWALGenMismatchSkipped: a log pinned to a generation other than the
// loaded snapshot's is dead weight — Load must succeed, skip it, count the
// skip, and never apply its ops.
func TestWALGenMismatchSkipped(t *testing.T) {
	dir := t.TempDir()
	buildWALBase(t, 1, dir)

	// Forge a log pinned to a generation this store never had, carrying a
	// delete that must NOT apply.
	l, err := wal.Create(fsio.OS(), filepath.Join(dir, wal.FileName), 0, "gen-999999", 1, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(wal.Op{Kind: wal.OpDelete, Rec: 0}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	st := mustLoad(t, dir)
	ws := st.WALStats()
	if ws.ReplayedOps != 0 || ws.SkippedLogs != 1 {
		t.Fatalf("stats = %+v, want 0 replayed / 1 skipped", ws)
	}
	if st.NumDeleted() != 0 {
		t.Fatal("a stale-generation log's delete was applied")
	}
	// The stale log survives on disk for inspection.
	infos, err := InspectWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Gen != "gen-999999" || infos[0].Ops != 1 {
		t.Fatalf("inspect = %+v", infos)
	}
}

// TestIncrementalViewDifferential is the view-maintenance claim: after live
// appends/edges/deletes AND after crash-replay of the same ops, every view
// bitmap is bit-for-bit identical to one rebuilt from scratch on the final
// records, and every aggregate view's pre-aggregated measures match.
func TestIncrementalViewDifferential(t *testing.T) {
	dir := t.TempDir()
	buildWALBase(t, 1, dir)
	live := mustLoad(t, dir)
	if err := live.EnableWAL(dir, WALConfig{Policy: SyncAlways}); err != nil {
		t.Fatal(err)
	}
	for _, op := range walOps() {
		if err := op.apply(live); err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
	}

	// replayed = crash now, recover from snapshot + log. Its views were
	// maintained incrementally by the replay path.
	if err := live.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	replayed := mustLoad(t, dir)

	// rebuilt = a fresh store over the FINAL record contents with the views
	// materialized from scratch (then the final deletion set applied).
	rebuilt := Open()
	for id := uint32(0); int(id) < live.NumRecords(); id++ {
		rec, err := live.GetRecord(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := rebuilt.Add(rec); got != id {
			t.Fatalf("rebuilt id %d != %d", got, id)
		}
	}
	if err := rebuilt.MaterializeView("v", PathOf("a", "b", "c").ToGraph()); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.MaterializeAggViewPath("sv", Sum, "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := rebuilt.Delete(2); err != nil {
		t.Fatal(err)
	}

	for _, cmp := range []struct {
		name string
		st   *Store
	}{{"live-incremental", live}, {"crash-replayed", replayed}} {
		rel := cmp.st.rel
		for _, v := range rel.Views() {
			var ref *colstore.GraphView
			for _, rv := range rebuilt.rel.Views() {
				if rv.Name == v.Name {
					ref = rv
				}
			}
			if ref == nil {
				t.Fatalf("%s: view %s missing from rebuild", cmp.name, v.Name)
			}
			if !v.Col.Bits().Equals(ref.Col.Bits()) {
				t.Fatalf("%s: view %s bitmap differs from scratch rebuild", cmp.name, v.Name)
			}
		}
		for _, av := range rel.AggViews() {
			var ref *colstore.AggregateView
			for _, rv := range rebuilt.rel.AggViews() {
				if rv.Name == av.Name {
					ref = rv
				}
			}
			if ref == nil {
				t.Fatalf("%s: agg view %s missing from rebuild", cmp.name, av.Name)
			}
			if !av.Col.Bits().Equals(ref.Col.Bits()) {
				t.Fatalf("%s: agg view %s bitmap differs from scratch rebuild", cmp.name, av.Name)
			}
			av.Col.Bits().Each(func(rec uint32) bool {
				got, gok := av.Measure.Get(rec)
				want, wok := ref.Measure.Get(rec)
				if gok != wok || got != want {
					t.Fatalf("%s: agg view %s rec %d = %v/%v, want %v/%v",
						cmp.name, av.Name, rec, got, gok, want, wok)
				}
				return true
			})
		}
	}
	// And the two maintained stores agree with each other completely.
	if stateDigest(t, live) != stateDigest(t, replayed) {
		t.Fatal("live and crash-replayed stores digest differently")
	}
}
