package grove

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// TestServeMetricsEndpoint is the acceptance check for the /metrics surface:
// the endpoint serves parseable Prometheus text including the query latency
// histogram and the cache hit/miss counters.
func TestServeMetricsEndpoint(t *testing.T) {
	st := buildSCMStore(t)
	st.EnableResultCache(true, 8)
	st.EnableTracing(0)
	st.Metrics()

	// One repeated query (a hit on the rerun) and one aggregation.
	for i := 0; i < 2; i++ {
		if _, err := st.MatchPath("A", "D", "E"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.AggregatePath(Sum, "A", "D", "E", "G", "I"); err != nil {
		t.Fatal(err)
	}

	srv, err := st.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	out := string(body)

	for _, want := range []string{
		`grove_queries_total{kind="graph"} 2`,
		`grove_queries_total{kind="pathagg"} 1`,
		`grove_query_duration_seconds_bucket{kind="graph",le="+Inf"} 2`,
		`grove_query_duration_seconds_count{kind="graph"} 2`,
		"grove_cache_hits_total 1",
		"grove_cache_misses_total 2", // first run + the aggregation's structural filter
		"grove_cache_evictions_total 0",
		"grove_io_bitmap_fetches_total",
		"grove_store_records 3",
		"grove_traces_recorded_total 3",
		"# TYPE grove_query_duration_seconds histogram",
		"# TYPE grove_cache_hits_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
	// Every sample line must parse as `name value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
	}

	// /traces serves the ring as JSON, newest first.
	resp, err = http.Get("http://" + srv.Addr() + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces []Trace
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("traces = %d", len(traces))
	}
	if traces[0].Kind != "pathagg" || traces[1].Kind != "graph" {
		t.Errorf("trace order = %s, %s, %s", traces[0].Kind, traces[1].Kind, traces[2].Kind)
	}
	if !traces[0].Cached && traces[1].Cached == traces[2].Cached {
		t.Errorf("exactly one graph trace should be cached: %+v", traces)
	}
}

// TestExplainAnalyzeThroughStore is the EXPLAIN ANALYZE acceptance criterion
// at the public API: a view-rewritten query's observed bitmap-fetch count
// equals the plan's BitmapsFetched, with per-phase wall time reported.
func TestExplainAnalyzeThroughStore(t *testing.T) {
	st := buildSCMStore(t)
	if err := st.MaterializeView("vADE", PathOf("A", "D", "E").ToGraph()); err != nil {
		t.Fatal(err)
	}
	g := PathOf("A", "D", "E", "G").ToGraph()
	a, err := st.ExplainAnalyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Plan.Views) != 1 || a.Plan.Views[0] != "vADE" {
		t.Fatalf("plan = %+v", a.Plan)
	}
	if got, want := a.Trace.IO.BitmapColumnsFetched, int64(a.Plan.BitmapsFetched); got != want {
		t.Errorf("observed fetches = %d, plan predicts %d", got, want)
	}
	if a.Records != 2 {
		t.Errorf("records = %d", a.Records)
	}
	if !strings.Contains(a.String(), "observed:") {
		t.Errorf("rendering missing observation:\n%s", a.String())
	}
}

func TestCacheStatsAndEvictionsThroughStore(t *testing.T) {
	st := buildSCMStore(t)
	if (st.CacheStats() != CacheStats{}) {
		t.Errorf("no-cache stats = %+v", st.CacheStats())
	}
	// Capacity 1 degrades to one entry per shard; querying many distinct
	// two-edge paths that collide in a shard forces LRU evictions.
	st.EnableResultCache(true, 1)
	paths := [][]string{
		{"A", "D", "E"}, {"D", "E", "G"}, {"E", "G", "I"}, {"A", "B", "F"},
		{"B", "F", "J"}, {"F", "J", "K"}, {"C", "H", "K"}, {"E", "G", "K"},
	}
	for round := 0; round < 2; round++ {
		for _, p := range paths {
			if _, err := st.MatchPath(p...); err != nil {
				t.Fatal(err)
			}
		}
	}
	cs := st.CacheStats()
	if cs.Misses == 0 {
		t.Error("no misses recorded")
	}
	if cs.Evictions == 0 {
		t.Errorf("no evictions recorded at capacity 1: %+v", cs)
	}
	if cs.Hits+cs.Misses != int64(2*len(paths)) {
		t.Errorf("hits+misses = %d, want %d", cs.Hits+cs.Misses, 2*len(paths))
	}
}

func TestViewUsageThroughStore(t *testing.T) {
	st := buildSCMStore(t)
	if err := st.MaterializeView("vADE", PathOf("A", "D", "E").ToGraph()); err != nil {
		t.Fatal(err)
	}
	if n := len(st.ViewUsage()); n != 1 {
		t.Fatalf("usage entries = %d", n)
	}
	if st.ViewUsage()["vADE"] != 0 {
		t.Errorf("unused view has uses = %d", st.ViewUsage()["vADE"])
	}
	for i := 0; i < 3; i++ {
		if _, err := st.MatchPath("A", "D", "E", "G"); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.ViewUsage()["vADE"]; got != 3 {
		t.Errorf("view uses = %d, want 3", got)
	}
}

func TestStoreQueryIsTracedAsStatement(t *testing.T) {
	st := buildSCMStore(t)
	st.EnableTracing(2)
	if _, err := st.Query("[A,D] AND NOT [C,H]"); err != nil {
		t.Fatal(err)
	}
	traces := st.RecentTraces()
	if len(traces) != 1 || traces[0].Kind != "statement" {
		t.Fatalf("traces = %+v", traces)
	}
	var phases []string
	for _, s := range traces[0].Spans {
		phases = append(phases, s.Phase)
	}
	if phases[0] != "parse" {
		t.Errorf("first phase = %v", phases)
	}
	st.DisableTracing()
	if st.RecentTraces() != nil {
		t.Error("traces survive disabling")
	}
}

// ExampleStore_ExplainAnalyze shows the EXPLAIN ANALYZE surface end to end.
func ExampleStore_ExplainAnalyze() {
	st := Open()
	rec := NewRecord()
	rec.SetEdge("A", "D", 2)
	rec.SetEdge("D", "E", 2)
	st.Add(rec)
	a, _ := st.ExplainAnalyze(PathOf("A", "D", "E").ToGraph())
	fmt.Println("bitmaps fetched:", a.Trace.IO.BitmapColumnsFetched)
	fmt.Println("records:", a.Records)
	// Output:
	// bitmaps fetched: 2
	// records: 1
}
