package synth

import (
	"testing"

	"grove"
)

func TestNYDataset(t *testing.T) {
	ds, err := NY(Config{Records: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Store.NumRecords() != 300 {
		t.Fatalf("records = %d", ds.Store.NumRecords())
	}
	if ds.Store.NumEdges() == 0 || ds.Store.NumEdges() > 2000 {
		t.Fatalf("edge domain = %d", ds.Store.NumEdges())
	}
	if ds.Describe() == "" {
		t.Error("empty description")
	}
	// Queries drawn from the walks must hit stored records.
	nonEmpty := 0
	for _, g := range ds.UniformPathQueries(30, 2, 4) {
		res, err := ds.Store.Match(g)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRecords() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 5 {
		t.Errorf("only %d/30 queries matched", nonEmpty)
	}
}

func TestGNUDataset(t *testing.T) {
	ds, err := GNU(Config{Records: 200, EdgeDomain: 500, MinEdges: 10, MaxEdges: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Store.NumRecords() != 200 {
		t.Fatalf("records = %d", ds.Store.NumRecords())
	}
	if path := ds.QueryPath(3); len(path) < 2 {
		t.Errorf("QueryPath = %v", path)
	}
	if qs := ds.ZipfQueries(20, 5, 4, true); len(qs) != 20 {
		t.Errorf("ZipfQueries = %d", len(qs))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NY(Config{}); err == nil {
		t.Error("zero records accepted")
	}
	if _, err := GNU(Config{Records: -1}); err == nil {
		t.Error("negative records accepted")
	}
}

func TestEndToEndWithViews(t *testing.T) {
	ds, err := NY(Config{Records: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	workload := ds.UniformPathQueries(20, 3, 6)
	names, err := ds.Store.MaterializeAggViews(workload, grove.Sum, 10, grove.AdvisorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("advisor selected nothing")
	}
	for _, g := range workload[:5] {
		if _, err := ds.Store.Aggregate(g, grove.Sum); err != nil {
			t.Fatal(err)
		}
	}
}
