package grove_test

import (
	"grove/internal/graph"
	"grove/internal/mine"
)

// minedFragments runs the gSpan-style miner + gIndex discriminative
// selection over a training sample, as the Figs. 10–11 benchmarks need.
func minedFragments(sample []*graph.Record) ([]mine.Fragment, error) {
	minSup := len(sample) / 20
	if minSup < 2 {
		minSup = 2
	}
	frags, err := mine.MineFrequent(sample, mine.Config{
		MinSupport:   minSup,
		MaxEdges:     4,
		MaxFragments: 50000,
	})
	if err != nil {
		return nil, err
	}
	return mine.SelectDiscriminative(frags, len(sample), 1.5), nil
}
