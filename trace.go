package grove

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Trace interchange format: one JSON object per line, each describing one
// graph record — the shape monitoring pipelines (RFID readers, flow
// collectors, workflow engines) can emit directly:
//
//	{"edges":[{"from":"A","to":"D","measure":3.5,
//	           "measures":{"cost":40}}],
//	 "nodes":[{"id":"D","measure":0.5}],
//	 "tags":{"type":"fast-track"}}
//
// Cyclic traces are flattened to DAGs on load, like any other record.

// TraceEdge is one edge of a trace record.
type TraceEdge struct {
	From    string   `json:"from"`
	To      string   `json:"to"`
	Measure *float64 `json:"measure,omitempty"`
	// Measures holds additional named measures (e.g. "cost").
	Measures map[string]float64 `json:"measures,omitempty"`
}

// TraceNode is one measured node of a trace record.
type TraceNode struct {
	ID      string   `json:"id"`
	Measure *float64 `json:"measure,omitempty"`
	// Measures holds additional named measures.
	Measures map[string]float64 `json:"measures,omitempty"`
}

// TraceRecord is the JSONL representation of one graph record.
type TraceRecord struct {
	Edges []TraceEdge       `json:"edges"`
	Nodes []TraceNode       `json:"nodes,omitempty"`
	Tags  map[string]string `json:"tags,omitempty"`
}

// ToRecord converts the trace representation into a Record.
func (t TraceRecord) ToRecord() (*Record, error) {
	rec := NewRecord()
	for _, e := range t.Edges {
		if e.From == "" || e.To == "" {
			return nil, fmt.Errorf("grove: trace edge with empty endpoint: %+v", e)
		}
		k := EdgeKey{From: e.From, To: e.To}
		if e.Measure != nil {
			if err := rec.SetElement(k, *e.Measure); err != nil {
				return nil, err
			}
		} else {
			rec.AddBareElement(k)
		}
		for name, v := range e.Measures {
			if err := rec.SetElementNamed(k, name, v); err != nil {
				return nil, err
			}
		}
	}
	for _, n := range t.Nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("grove: trace node with empty id")
		}
		k := EdgeKey{From: n.ID, To: n.ID}
		if n.Measure != nil {
			if err := rec.SetElement(k, *n.Measure); err != nil {
				return nil, err
			}
		} else {
			rec.AddBareElement(k)
		}
		for name, v := range n.Measures {
			if err := rec.SetElementNamed(k, name, v); err != nil {
				return nil, err
			}
		}
	}
	if rec.NumElements() == 0 {
		return nil, fmt.Errorf("grove: empty trace record")
	}
	return rec, nil
}

// ImportTraces reads JSONL trace records from r and adds each to the store,
// applying tags. It returns the number of records imported; on error, the
// records imported before the bad line remain in the store, and the error
// names the failing line.
func (s *Store) ImportTraces(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var tr TraceRecord
		if err := json.Unmarshal(raw, &tr); err != nil {
			return n, fmt.Errorf("grove: trace line %d: %w", line, err)
		}
		rec, err := tr.ToRecord()
		if err != nil {
			return n, fmt.Errorf("grove: trace line %d: %w", line, err)
		}
		id := s.Add(rec)
		for k, v := range tr.Tags {
			if err := s.Tag(id, k, v); err != nil {
				return n, fmt.Errorf("grove: trace line %d: %w", line, err)
			}
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("grove: reading traces: %w", err)
	}
	return n, nil
}

// ExportTraces writes every stored record (reconstructed from the columns)
// as JSONL to w. Tags are included. Returns the number of records written.
func (s *Store) ExportTraces(w io.Writer) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	// Fetch every tag bitmap once up front instead of once per record: the
	// per-record membership test is then a bitmap Contains, turning
	// O(records × tags) column fetches into O(tags).
	type tagBitmap struct {
		key, value string
		bits       *Bitmap
	}
	var tags []tagBitmap
	for _, key := range s.rel.TagKeys() {
		for _, value := range s.rel.TagValues(key) {
			tags = append(tags, tagBitmap{key: key, value: value,
				bits: s.rel.FetchTagBitmap(key, value)})
		}
	}
	for id := uint32(0); int(id) < s.NumRecords(); id++ {
		rec, err := s.GetRecord(id)
		if err != nil {
			return int(id), err
		}
		tr := TraceRecord{}
		names := rec.MeasureNames()
		for _, k := range rec.Elements() {
			named := map[string]float64{}
			for _, name := range names {
				if m := rec.MeasureNamed(k, name); m.Valid {
					named[name] = m.Value
				}
			}
			if len(named) == 0 {
				named = nil
			}
			if k.IsNode() {
				tn := TraceNode{ID: k.From, Measures: named}
				if m := rec.Measure(k); m.Valid {
					v := m.Value
					tn.Measure = &v
				}
				tr.Nodes = append(tr.Nodes, tn)
			} else {
				te := TraceEdge{From: k.From, To: k.To, Measures: named}
				if m := rec.Measure(k); m.Valid {
					v := m.Value
					te.Measure = &v
				}
				tr.Edges = append(tr.Edges, te)
			}
		}
		for _, t := range tags {
			if t.bits.Contains(id) {
				if tr.Tags == nil {
					tr.Tags = map[string]string{}
				}
				tr.Tags[t.key] = t.value
			}
		}
		if err := enc.Encode(tr); err != nil {
			return int(id), err
		}
	}
	if err := bw.Flush(); err != nil {
		return s.NumRecords(), err
	}
	return s.NumRecords(), nil
}
