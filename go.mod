module grove

go 1.22
