package grove

import (
	"fmt"
	"math"
)

// This file implements the consolidation layer of §3.4: "an analytical query
// can use the result of a path aggregation and further consolidate the
// computed aggregates in order to compute higher level statistics, such as
// the average delivery time and the standard deviation for the retrieved
// records based on the order type". The per-record aggregates are flat data,
// so these operators stay in plain relational-style Go.

// Summary holds descriptive statistics over a set of per-record aggregates.
type Summary struct {
	Count  int
	Sum    float64
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize consolidates a slice of per-record aggregates, skipping NULLs
// (NaN). An all-NULL input yields a zero Count.
func Summarize(values []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	var sumSq float64
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		s.Count++
		s.Sum += v
		sumSq += v * v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	if s.Count == 0 {
		return Summary{}
	}
	s.Mean = s.Sum / float64(s.Count)
	variance := sumSq/float64(s.Count) - s.Mean*s.Mean
	if variance < 0 {
		variance = 0 // guard against floating-point cancellation
	}
	s.StdDev = math.Sqrt(variance)
	return s
}

// AveragePath computes the algebraic AVG along a path from its distributive
// parts (§5.1.2: "for algebraic aggregate functions one can store the
// constituent distributive sub-aggregates — sum and count for the average").
// It returns one value per matching record (NaN for NULL paths), aligned
// with the returned record ids. Both sub-aggregations reuse any SUM/COUNT
// aggregate views independently.
func (s *Store) AveragePath(nodes ...string) (recordIDs []uint32, avgs []float64, err error) {
	sumRes, err := s.AggregatePath(Sum, nodes...)
	if err != nil {
		return nil, nil, err
	}
	countRes, err := s.AggregatePath(Count, nodes...)
	if err != nil {
		return nil, nil, err
	}
	if len(sumRes.RecordIDs) != len(countRes.RecordIDs) {
		return nil, nil, fmt.Errorf("grove: sum/count answers diverged (%d vs %d records)",
			len(sumRes.RecordIDs), len(countRes.RecordIDs))
	}
	avgs = make([]float64, len(sumRes.RecordIDs))
	for i := range avgs {
		sum, count := sumRes.Values[0][i], countRes.Values[0][i]
		if math.IsNaN(sum) || math.IsNaN(count) || count == 0 {
			avgs[i] = math.NaN()
		} else {
			avgs[i] = sum / count
		}
	}
	return sumRes.RecordIDs, avgs, nil
}

// SummarizeByTag groups a path-aggregation result by the values of a tag key
// (e.g. average and standard deviation of delivery time per order type,
// §3.4) and consolidates each group. Records without the tag fall into the
// "" group. Multi-path results are folded across paths first.
func (s *Store) SummarizeByTag(res *AggResult, key string) (map[string]Summary, error) {
	if res == nil {
		return nil, fmt.Errorf("grove: nil aggregation result")
	}
	folded := res.FoldAcrossPaths()
	groups := make(map[string][]float64)
	assigned := make([]bool, len(res.RecordIDs))
	for _, value := range s.rel.TagValues(key) {
		tagged := s.rel.FetchTagBitmap(key, value)
		for i, rec := range res.RecordIDs {
			if tagged.Contains(rec) {
				groups[value] = append(groups[value], folded[i])
				assigned[i] = true
			}
		}
	}
	for i := range res.RecordIDs {
		if !assigned[i] {
			groups[""] = append(groups[""], folded[i])
		}
	}
	out := make(map[string]Summary, len(groups))
	for value, vals := range groups {
		out[value] = Summarize(vals)
	}
	return out, nil
}
