package grove

import (
	"path/filepath"

	"grove/internal/fsio"
	"grove/internal/shard"
	"grove/internal/wal"
)

// Write-ahead logging facade (DESIGN.md §14). A store's snapshots are
// full-state and generational; the WAL fills the gap between them: with
// EnableWAL on, every mutation appends a CRC-framed op to a per-shard log
// before applying, and LoadStore replays the surviving log prefix atop the
// snapshot. How much survives a crash is the fsync policy's choice:
//
//	SyncAlways    every acknowledged op (group commit batches the fsyncs)
//	SyncInterval  all but the last interval's ops
//	SyncNever     whatever the OS flushed on its own
//
// Save on a WAL-enabled directory checkpoints: snapshot, commit, truncate
// the log. Views maintain themselves incrementally on both the live and the
// replay path, so a recovered store's view bitmaps are bit-identical to
// freshly rebuilt ones.

// WALConfig selects the write-ahead log's durability/throughput trade-off.
type WALConfig = wal.Config

// SyncPolicy is the fsync policy knob of a WALConfig.
type SyncPolicy = wal.SyncPolicy

// Fsync policies, in decreasing durability order.
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNever    = wal.SyncNever
)

// DefaultSyncInterval is the fsync cadence SyncInterval defaults to.
const DefaultSyncInterval = wal.DefaultInterval

// ParseSyncPolicy maps "always" / "interval" / "never" to its SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParsePolicy(s) }

// WALStats aggregates the per-shard write-ahead log counters.
type WALStats = shard.WALStats

// cleanPath normalizes a directory path for identity comparison.
func cleanPath(dir string) string { return filepath.Clean(dir) }

// EnableWAL turns on write-ahead logging under dir, the same directory the
// store is (or will be) saved in. Call it right after Open or LoadStore:
//
//   - on a store just loaded from dir, the existing logs resume in place
//     (any torn tail from the crash is truncated first);
//   - on a fresh or since-mutated store, EnableWAL first checkpoints to dir
//     so the logs start empty atop a snapshot that fully covers memory.
//
// After EnableWAL returns, every mutation is logged before it applies and
// recoverable per cfg's fsync policy. If the log later fails (disk full,
// I/O error), it latches: mutations keep applying in memory, mutators and
// WALError report the condition, and a successful Save (checkpoint) starts
// a fresh log.
func (s *Store) EnableWAL(dir string, cfg WALConfig) error {
	return s.coord.AttachWALFS(fsio.OS(), cleanPath(dir), cfg)
}

// OpenDurable opens a write-ahead-logged store at dir: an existing store
// loads (replaying its log), an absent one is created, and either way WAL is
// enabled with cfg before OpenDurable returns. It is the one-call durable
// lifecycle:
//
//	st, _ := grove.OpenDurable(dir, grove.WALConfig{Policy: grove.SyncAlways})
//	st.Append(rec)        // durable once it returns
//	st.Save(dir)          // checkpoint: fold the log into a snapshot
func OpenDurable(dir string, cfg WALConfig, opts ...Option) (*Store, error) {
	st, err := LoadStore(dir)
	if err != nil {
		if storeExists(dir) {
			return nil, err
		}
		st = Open(opts...)
	}
	if err := st.EnableWAL(dir, cfg); err != nil {
		return nil, err
	}
	return st, nil
}

// storeExists reports whether dir holds something that should load as a
// store — distinguishing "nothing there yet" (OpenDurable creates it) from
// "a store that failed to load" (OpenDurable must not silently overwrite).
func storeExists(dir string) bool {
	fs := fsio.OS()
	if _, err := fs.Stat(filepath.Join(dir, "CURRENT")); err == nil {
		return true
	}
	if _, err := fs.Stat(filepath.Join(dir, "SHARDS.json")); err == nil {
		return true
	}
	if _, err := fs.Stat(filepath.Join(dir, "registry.json")); err == nil {
		return true
	}
	return false
}

// Append adds a record like Add but reports the write-ahead log's verdict: a
// non-nil error means the record IS applied in memory (the returned id is
// valid) but NOT guaranteed durable. Without WAL it never errors.
func (s *Store) Append(rec *Record) (uint32, error) { return s.coord.Append(rec) }

// AppendEdge adds one edge (or node, when from == to) with a default-measure
// value to an existing record. The record's membership in every matching
// view updates incrementally — a new edge that completes a view's defining
// query ORs the record into that view's bitmap, and aggregate views
// recompute the record's pre-aggregated measure.
func (s *Store) AppendEdge(rec uint32, from, to string, v float64) error {
	return s.coord.AppendEdge(rec, from, to, "", v, true)
}

// AppendEdgeMeasure is AppendEdge under a named measure ("" = default).
func (s *Store) AppendEdgeMeasure(rec uint32, from, to, measure string, v float64) error {
	return s.coord.AppendEdge(rec, from, to, measure, v, true)
}

// AppendBareEdge adds an edge (or node) without a measure.
func (s *Store) AppendBareEdge(rec uint32, from, to string) error {
	return s.coord.AppendEdge(rec, from, to, "", 0, false)
}

// WALEnabled reports whether a write-ahead log is attached.
func (s *Store) WALEnabled() bool { return s.coord.WALEnabled() }

// WALStats snapshots the write-ahead log counters: appended records/bytes,
// fsyncs, truncations, replayed ops, per-shard LSN ranges.
func (s *Store) WALStats() WALStats { return s.coord.WALStats() }

// WALError returns the first sticky write-ahead log failure, if any: non-nil
// means ops past some LSN are applied in memory but not reaching the disk.
// A successful Save (checkpoint) clears the condition by starting fresh logs.
func (s *Store) WALError() error { return s.coord.WALError() }

// SyncWAL forces an fsync of every shard's log regardless of policy — the
// "flush before exit" call for SyncInterval / SyncNever stores. A no-op
// without WAL.
func (s *Store) SyncWAL() error { return s.coord.SyncWAL() }

// InspectWAL describes one shard's log file without loading the store:
// header identity, LSN range, op count, tail health. Sharded stores have
// one entry per shard directory; single-shard stores exactly one.
type WALFileInfo struct {
	Path string
	// Exists is false when no log file is present at all.
	Exists bool
	// HeaderOK is false when the file exists but its identity is unreadable
	// (corrupt or foreign header); such a log is ignored by replay.
	HeaderOK  bool
	HeaderErr string
	Shard     uint32
	// Gen is the snapshot generation the log extends.
	Gen string
	// BaseLSN..NextLSN-1 are the LSNs of the valid frames; Ops counts them.
	BaseLSN, NextLSN uint64
	Ops              int
	// GoodBytes/TornBytes split the file into the valid prefix and the torn
	// tail a crash left behind (0 torn = clean). TornReason says what ended
	// the prefix.
	GoodBytes, TornBytes int64
	TornReason           string
	// Kinds histograms the decoded ops by kind name.
	Kinds map[string]int
}

// InspectWAL scans the write-ahead log files of the store directory at dir
// (never modifying them) and reports their health. It works on damaged
// stores: a torn or corrupt log is described, not rejected.
func InspectWAL(dir string) ([]WALFileInfo, error) {
	fs := fsio.OS()
	paths := []string{filepath.Join(dir, wal.FileName)}
	if shard.IsShardedDir(dir) {
		dirs, err := shard.ShardDirs(dir)
		if err != nil {
			return nil, err
		}
		paths = paths[:0]
		for _, d := range dirs {
			paths = append(paths, filepath.Join(d, wal.FileName))
		}
	}
	out := make([]WALFileInfo, 0, len(paths))
	for _, p := range paths {
		res, err := wal.Scan(fs, p)
		if err != nil {
			return nil, err
		}
		info := WALFileInfo{
			Path:       p,
			Exists:     !res.Missing(),
			HeaderOK:   res.HeaderOK,
			HeaderErr:  res.HeaderErr,
			Shard:      res.Header.Shard,
			Gen:        res.Header.Gen,
			BaseLSN:    res.Header.BaseLSN,
			NextLSN:    res.NextLSN,
			Ops:        len(res.Ops),
			GoodBytes:  res.GoodSize,
			TornBytes:  res.TornBytes(),
			TornReason: res.TornReason,
		}
		if len(res.Ops) > 0 {
			info.Kinds = make(map[string]int)
			for _, op := range res.Ops {
				info.Kinds[op.Kind.String()]++
			}
		}
		out = append(out, info)
	}
	return out, nil
}
