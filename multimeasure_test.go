package grove

import (
	"math"
	"testing"
)

// buildMultiMeasureStore loads SCM orders carrying BOTH a time and a cost
// measure per leg — the multi-measure setting of §2/§3.1 (Q1 asks for time,
// Q2 for cost).
func buildMultiMeasureStore(t *testing.T) *Store {
	t.Helper()
	st := Open()
	type legMeasures struct {
		time, cost float64
	}
	orders := []map[[2]string]legMeasures{
		{
			{"A", "D"}: {2, 10}, {"D", "E"}: {3, 20}, {"E", "G"}: {1, 30}, {"G", "I"}: {2, 40},
		},
		{
			{"A", "D"}: {4, 11}, {"D", "E"}: {5, 21}, {"C", "H"}: {9, 99},
		},
	}
	for _, legs := range orders {
		rec := NewRecord()
		for leg, m := range legs {
			if err := rec.SetEdge(leg[0], leg[1], m.time); err != nil {
				t.Fatal(err)
			}
			if err := rec.SetEdgeNamed(leg[0], leg[1], "cost", m.cost); err != nil {
				t.Fatal(err)
			}
		}
		st.Add(rec)
	}
	return st
}

func TestRecordNamedMeasures(t *testing.T) {
	rec := NewRecord()
	if err := rec.SetEdge("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	if err := rec.SetEdgeNamed("A", "B", "cost", 5); err != nil {
		t.Fatal(err)
	}
	if err := rec.SetEdgeNamed("A", "B", "", 2); err != nil {
		t.Fatal(err)
	}
	if m := rec.Measure(EdgeKey{From: "A", To: "B"}); !m.Valid || m.Value != 2 {
		t.Errorf("default measure = %+v, want 2 (overwritten)", m)
	}
	if m := rec.MeasureNamed(EdgeKey{From: "A", To: "B"}, "cost"); !m.Valid || m.Value != 5 {
		t.Errorf("cost measure = %+v", m)
	}
	if m := rec.MeasureNamed(EdgeKey{From: "A", To: "B"}, "weight"); m.Valid {
		t.Error("absent named measure reported valid")
	}
	if names := rec.MeasureNames(); len(names) != 1 || names[0] != "cost" {
		t.Errorf("MeasureNames = %v", names)
	}
	if rec.NumMeasures() != 2 {
		t.Errorf("NumMeasures = %d, want 2", rec.NumMeasures())
	}
	if err := rec.SetEdgeNamed("A", "B", "cost", math.NaN()); err == nil {
		t.Error("NaN named measure accepted")
	}
}

func TestAggregateNamedMeasure(t *testing.T) {
	st := buildMultiMeasureStore(t)
	// Time along A→D→E (default measure): 5 and 9.
	timeAgg, err := st.AggregatePath(Sum, "A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	if timeAgg.Values[0][0] != 5 || timeAgg.Values[0][1] != 9 {
		t.Errorf("time sums = %v, want [5 9]", timeAgg.Values[0])
	}
	// Cost along the same path: 30 and 32.
	costAgg, err := st.AggregatePathMeasure(Sum, "cost", "A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	if costAgg.Values[0][0] != 30 || costAgg.Values[0][1] != 32 {
		t.Errorf("cost sums = %v, want [30 32]", costAgg.Values[0])
	}
	if names := st.MeasureNames(); len(names) != 1 || names[0] != "cost" {
		t.Errorf("MeasureNames = %v", names)
	}
}

func TestAggregateMissingNamedMeasureIsNull(t *testing.T) {
	st := buildMultiMeasureStore(t)
	agg, err := st.AggregatePathMeasure(Sum, "weight", "A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range agg.Values[0] {
		if !math.IsNaN(v) {
			t.Errorf("record %d: aggregate over absent measure = %v, want NaN", i, v)
		}
	}
}

func TestAggViewOnNamedMeasure(t *testing.T) {
	st := buildMultiMeasureStore(t)
	if err := st.MaterializeAggViewPathMeasure("cade", Sum, "cost", "A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	// The cost view must serve cost queries...
	costAgg, err := st.AggregatePathMeasure(Sum, "cost", "A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	if costAgg.SegmentsPerPath[0][0] != 1 {
		t.Errorf("cost view not used: segments = %v", costAgg.SegmentsPerPath[0])
	}
	if costAgg.Values[0][0] != 30 {
		t.Errorf("cost via view = %v, want 30", costAgg.Values[0][0])
	}
	// ...but must NOT be used for the default (time) measure.
	timeAgg, err := st.AggregatePath(Sum, "A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	if timeAgg.SegmentsPerPath[0][0] != 0 {
		t.Errorf("cost view wrongly used for time: segments = %v", timeAgg.SegmentsPerPath[0])
	}
	if timeAgg.Values[0][0] != 5 {
		t.Errorf("time = %v, want 5", timeAgg.Values[0][0])
	}
}

func TestNamedMeasuresSurviveSaveLoad(t *testing.T) {
	dir := t.TempDir()
	st := buildMultiMeasureStore(t)
	if err := st.MaterializeAggViewPathMeasure("c", Sum, "cost", "A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	costAgg, err := got.AggregatePathMeasure(Sum, "cost", "A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	if costAgg.Values[0][0] != 30 || costAgg.Values[0][1] != 32 {
		t.Errorf("cost after reload = %v", costAgg.Values[0])
	}
	if costAgg.SegmentsPerPath[0][0] != 1 {
		t.Error("reloaded named-measure view not used")
	}
	// Incremental maintenance still works for the named-measure view.
	rec := NewRecord()
	if err := rec.SetEdge("A", "D", 1); err != nil {
		t.Fatal(err)
	}
	if err := rec.SetEdge("D", "E", 1); err != nil {
		t.Fatal(err)
	}
	if err := rec.SetEdgeNamed("A", "D", "cost", 100); err != nil {
		t.Fatal(err)
	}
	if err := rec.SetEdgeNamed("D", "E", "cost", 200); err != nil {
		t.Fatal(err)
	}
	got.Add(rec)
	costAgg, err = got.AggregatePathMeasure(Sum, "cost", "A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(costAgg.RecordIDs); n != 3 {
		t.Fatalf("answer size after add = %d", n)
	}
	if costAgg.Values[0][2] != 300 {
		t.Errorf("maintained cost view value = %v, want 300", costAgg.Values[0][2])
	}
}

func TestNamedMeasuresSurviveFlattening(t *testing.T) {
	rec := NewRecord()
	for _, e := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "A"}} {
		if err := rec.SetEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
		if err := rec.SetEdgeNamed(e[0], e[1], "cost", 7); err != nil {
			t.Fatal(err)
		}
	}
	st := Open()
	st.Add(rec) // cyclic → flattened
	if names := st.MeasureNames(); len(names) != 1 || names[0] != "cost" {
		t.Fatalf("MeasureNames after flattening = %v", names)
	}
	agg, err := st.AggregatePathMeasure(Sum, "cost", "A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.RecordIDs) != 1 || agg.Values[0][0] != 14 {
		t.Fatalf("flattened cost sum = %v", agg.Values)
	}
}
