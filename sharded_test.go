package grove

import (
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// loadSCMOrders adds the Fig. 1 supply-chain orders (plus a few variants so
// every shard of a 4-way store holds records) into st and returns the count.
func loadSCMOrders(t *testing.T, st *Store) int {
	t.Helper()
	orders := []struct {
		legs [][2]string
		time float64
	}{
		{[][2]string{{"A", "D"}, {"D", "E"}, {"E", "G"}, {"G", "I"}}, 2},
		{[][2]string{{"A", "B"}, {"B", "F"}, {"F", "J"}, {"J", "K"}, {"C", "H"}, {"H", "K"}}, 3},
		{[][2]string{{"A", "D"}, {"D", "E"}, {"E", "G"}, {"G", "K"}}, 5},
		{[][2]string{{"A", "D"}, {"D", "E"}}, 0.25},
		{[][2]string{{"A", "D"}, {"D", "E"}, {"E", "G"}}, math.Copysign(0, -1)},
		{[][2]string{{"A", "B"}, {"B", "F"}}, -7.5},
		{[][2]string{{"C", "H"}, {"H", "K"}}, 11},
	}
	for i, o := range orders {
		rec := NewRecord()
		for _, leg := range o.legs {
			if err := rec.SetEdge(leg[0], leg[1], o.time); err != nil {
				t.Fatal(err)
			}
		}
		if id := st.Add(rec); id != uint32(i) {
			t.Fatalf("order %d got id %d", i, id)
		}
	}
	return len(orders)
}

func assertSameAgg(t *testing.T, label string, a, b *AggResult) {
	t.Helper()
	if !a.Answer.Equals(b.Answer) {
		t.Fatalf("%s: answers differ: %v vs %v", label, a.RecordIDs, b.RecordIDs)
	}
	if len(a.RecordIDs) != len(b.RecordIDs) {
		t.Fatalf("%s: %d vs %d records", label, len(a.RecordIDs), len(b.RecordIDs))
	}
	for i := range a.RecordIDs {
		if a.RecordIDs[i] != b.RecordIDs[i] {
			t.Fatalf("%s: record order differs at %d: %d vs %d", label, i, a.RecordIDs[i], b.RecordIDs[i])
		}
	}
	if len(a.Values) != len(b.Values) {
		t.Fatalf("%s: %d vs %d paths", label, len(a.Values), len(b.Values))
	}
	for p := range a.Values {
		for i := range a.Values[p] {
			// Bit-exact: NaN payloads and signed zeros must survive sharding.
			if math.Float64bits(a.Values[p][i]) != math.Float64bits(b.Values[p][i]) {
				t.Fatalf("%s: value[%d][%d] = %v vs %v", label, p, i, a.Values[p][i], b.Values[p][i])
			}
		}
	}
}

// TestShardedPublicDifferential runs the same workload through a single-shard
// and a 4-shard store at the public API and demands identical results.
func TestShardedPublicDifferential(t *testing.T) {
	one, four := Open(), NewSharded(4)
	loadSCMOrders(t, one)
	loadSCMOrders(t, four)
	if four.NumShards() != 4 {
		t.Fatalf("NumShards = %d", four.NumShards())
	}
	for _, st := range []*Store{one, four} {
		if _, err := st.Delete(5); err != nil {
			t.Fatal(err)
		}
	}

	paths := [][]string{
		{"A", "D", "E"},
		{"A", "D", "E", "G"},
		{"A", "D", "E", "G", "I"},
		{"C", "H", "K"},
		{"X", "Y"}, // absent everywhere
	}
	for _, p := range paths {
		r1, err1 := one.MatchPath(p...)
		r4, err4 := four.MatchPath(p...)
		if (err1 == nil) != (err4 == nil) {
			t.Fatalf("MatchPath(%v): %v vs %v", p, err1, err4)
		}
		if err1 != nil {
			continue
		}
		if !r1.Answer.Equals(r4.Answer) {
			t.Fatalf("MatchPath(%v): %v vs %v", p, r1.Answer.ToSlice(), r4.Answer.ToSlice())
		}
		for _, f := range []AggFunc{Sum, Min, Max, Count} {
			a1, err1 := one.AggregatePath(f, p...)
			a4, err4 := four.AggregatePath(f, p...)
			if (err1 == nil) != (err4 == nil) {
				t.Fatalf("AggregatePath(%v): %v vs %v", p, err1, err4)
			}
			if err1 == nil {
				assertSameAgg(t, "AggregatePath", a1, a4)
			}
		}
	}

	e1, err := one.Eval(AndNot(Or(QPath("C", "H"), QPath("F", "J", "K")), QPath("E", "G")))
	if err != nil {
		t.Fatal(err)
	}
	e4, err := four.Eval(AndNot(Or(QPath("C", "H"), QPath("F", "J", "K")), QPath("E", "G")))
	if err != nil {
		t.Fatal(err)
	}
	if !e1.Equals(e4) {
		t.Fatalf("Eval: %v vs %v", e1.ToSlice(), e4.ToSlice())
	}

	for _, text := range []string{
		"[A,D,E] AND NOT [A,B]",
		"SUM [A,D,E,G,I]",
	} {
		q1, err1 := one.Query(text)
		q4, err4 := four.Query(text)
		if (err1 == nil) != (err4 == nil) {
			t.Fatalf("Query(%q): %v vs %v", text, err1, err4)
		}
		if err1 != nil {
			continue
		}
		switch {
		case q1.IDs != nil:
			if q4.IDs == nil || !q1.IDs.Equals(q4.IDs) {
				t.Fatalf("Query(%q): id answers differ", text)
			}
		case q1.Agg != nil:
			if q4.Agg == nil {
				t.Fatalf("Query(%q): agg answer missing on sharded store", text)
			}
			assertSameAgg(t, text, q1.Agg, q4.Agg)
		}
	}

	// Batch fan-out merges per query index.
	graphs := []*Graph{
		PathOf("A", "D", "E").ToGraph(),
		PathOf("C", "H", "K").ToGraph(),
		PathOf("A", "B", "F").ToGraph(),
	}
	b1, err := one.ExecuteBatch(graphs, 2)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := four.ExecuteBatch(graphs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1 {
		if !b1[i].Answer.Equals(b4[i].Answer) {
			t.Fatalf("batch query %d differs", i)
		}
	}
	ab1, err := one.AggregateBatch(graphs, Sum, 2)
	if err != nil {
		t.Fatal(err)
	}
	ab4, err := four.AggregateBatch(graphs, Sum, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ab1 {
		assertSameAgg(t, "agg batch", ab1[i], ab4[i])
	}
}

// TestShardedStatsAggregation is the satellite-4 regression: Stats and
// SizeBytes must aggregate across every shard, not report shard 0 alone.
func TestShardedStatsAggregation(t *testing.T) {
	st := NewSharded(4)
	n := loadSCMOrders(t, st)
	if _, err := st.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := st.Tag(0, "tier", "gold"); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Shards != 4 {
		t.Fatalf("Stats.Shards = %d", stats.Shards)
	}
	if stats.Records != n || st.NumRecords() != n {
		t.Fatalf("Stats.Records = %d, want %d", stats.Records, n)
	}
	if stats.Deleted != 1 || st.NumDeleted() != 1 {
		t.Fatalf("Stats.Deleted = %d", stats.Deleted)
	}
	if len(stats.TagKeys) != 1 || stats.TagKeys[0] != "tier" {
		t.Fatalf("Stats.TagKeys = %v", stats.TagKeys)
	}
	var sum, base int64
	for i := 0; i < 4; i++ {
		sum += st.coord.Unit(i).Rel.SizeBytes()
		base += st.coord.Unit(i).Rel.BaseSizeBytes()
	}
	if st.SizeBytes() != sum {
		t.Fatalf("SizeBytes = %d, shard sum = %d", st.SizeBytes(), sum)
	}
	if stats.BaseSizeBytes != base {
		t.Fatalf("BaseSizeBytes = %d, shard sum = %d", stats.BaseSizeBytes, base)
	}
	if stats.TotalMeasures == 0 || stats.BaseSizeBytes == 0 {
		t.Fatalf("stats not aggregated: %+v", stats)
	}
}

// TestShardedMetricsAggregation scrapes /metrics on a 4-shard store: the
// store-level gauges must cover all shards, and the per-shard families must
// carry one labelled sample per shard that sums to the store totals.
func TestShardedMetricsAggregation(t *testing.T) {
	st := NewSharded(4)
	n := loadSCMOrders(t, st)
	st.EnableResultCache(true, 32)
	st.Metrics()
	for i := 0; i < 3; i++ {
		if _, err := st.MatchPath("A", "D", "E"); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	st.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	out := rec.Body.String()

	for _, want := range []string{
		MetricStoreRecords + " " + strconv.Itoa(n),
		MetricStoreShards + " 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}

	sumFamily := func(name string) (total float64, samples int) {
		re := regexp.MustCompile(`^` + regexp.QuoteMeta(name) + `\{shard="(\d+)"\} (\S+)$`)
		for _, line := range strings.Split(out, "\n") {
			m := re.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			total += v
			samples++
		}
		return total, samples
	}

	if total, samples := sumFamily(MetricShardRecords); samples != 4 || total != float64(n) {
		t.Fatalf("%s: %d samples summing to %v, want 4 summing to %d\n%s",
			MetricShardRecords, samples, total, n, out)
	}
	if _, samples := sumFamily(MetricShardQueueDepth); samples != 4 {
		t.Fatalf("%s: %d samples, want 4", MetricShardQueueDepth, samples)
	}
	if total, samples := sumFamily(MetricShardSizeBytes); samples != 4 || total != float64(st.SizeBytes()) {
		t.Fatalf("%s: %d samples summing to %v, want %d", MetricShardSizeBytes, samples, total, st.SizeBytes())
	}
	// 3 identical queries: every shard misses once then hits twice.
	if total, samples := sumFamily(MetricShardCacheHits); samples != 4 || total != float64(st.CacheStats().Hits) {
		t.Fatalf("%s: %d samples summing to %v, want %d", MetricShardCacheHits, samples, total, st.CacheStats().Hits)
	}
	if st.CacheStats().Hits != 8 {
		t.Fatalf("aggregated cache hits = %d, want 8", st.CacheStats().Hits)
	}
}

// TestShardedStoreSaveLoadRoundTrip saves a sharded store through the public
// API and reloads it; a legacy single-shard directory must also keep loading.
func TestShardedStoreSaveLoadRoundTrip(t *testing.T) {
	st := NewSharded(3)
	n := loadSCMOrders(t, st)
	if _, err := st.Delete(1); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != 3 || got.NumRecords() != n || got.NumDeleted() != 1 {
		t.Fatalf("loaded shards=%d records=%d deleted=%d", got.NumShards(), got.NumRecords(), got.NumDeleted())
	}
	want, err := st.MatchPath("A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	res, err := got.MatchPath("A", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equals(want.Answer) {
		t.Fatalf("reloaded answer = %v, want %v", res.Answer.ToSlice(), want.Answer.ToSlice())
	}
	if id := got.Add(NewRecord()); id != uint32(n) {
		t.Fatalf("post-load Add assigned id %d, want %d", id, n)
	}

	// Single-shard stores keep the legacy flat layout, loadable both ways.
	flat := Open()
	loadSCMOrders(t, flat)
	flatDir := t.TempDir()
	if err := flat.Save(flatDir); err != nil {
		t.Fatal(err)
	}
	reflat, err := LoadStore(flatDir)
	if err != nil {
		t.Fatal(err)
	}
	if reflat.NumShards() != 1 || reflat.NumRecords() != n {
		t.Fatalf("legacy reload: shards=%d records=%d", reflat.NumShards(), reflat.NumRecords())
	}
}
